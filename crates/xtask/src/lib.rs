//! distill-lint: a from-scratch, offline, span-aware invariant checker for
//! this workspace.
//!
//! The checker enforces seven repo-wide invariants (see `DESIGN.md` §9 and
//! §14):
//!
//! * **D1 — panic-freedom.** Non-test code in the protected crates must not
//!   call `unwrap()`/`expect()` or invoke `panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!`/`dbg!`, unless the site carries a justification
//!   comment: `// lint: allow(panic) — <reason>`. `catch_unwind` is also
//!   banned there: recovering from panics is supervision, and supervision
//!   lives in the deliberately unprotected `crates/harness` crate so the
//!   protected core stays panic-*free*, not panic-*tolerant*.
//! * **D2 — determinism.** Non-test code in the protected crates must not
//!   use `HashMap`/`HashSet` (iteration order is randomized per process),
//!   wall-clock time (`Instant`/`SystemTime`), or ambient randomness
//!   (`thread_rng`/`from_entropy`), unless justified with
//!   `// lint: allow(nondet) — <reason>`.
//! * **D3 — unsafe hygiene.** Every workspace crate (except the vendored
//!   compat stubs) carries `#![forbid(unsafe_code)]` in its crate roots.
//! * **D4 — lint policy.** The root manifest pins the clippy panic-lint
//!   denies and the cast-lint warns under `[workspace.lints]`, and every
//!   protected crate opts in with `lints.workspace = true`.
//! * **D5 — lossy-cast audit** ([`casts`]). Narrowing or sign-changing `as`
//!   casts in protected crates are violations unless justified with
//!   `// lint: allow(cast) — <reason>`; widening casts stay allowed.
//! * **D6 — RNG stream discipline** ([`rngrule`]). RNG construction routes
//!   through `stream_rng(seed, Stream::…)`; raw seed arithmetic outside the
//!   RNG home module is a violation, and literal `Stream::Aux(k)` tags are
//!   collected workspace-wide and checked for duplicates and reserved-
//!   namespace wraps.
//! * **D7 — hot-path allocation hygiene** ([`hotpath`]). Functions
//!   annotated `// lint: hot` must not contain allocating constructs;
//!   `debug_assert!` oracle bodies are span-masked out first.
//!
//! The pass is *token-level with spans*, not a full parser: sources are
//! lexed just enough to blank out strings, char literals, and comments
//! (comments are kept on the side for justification lookup), `#[cfg(test)]`
//! spans are masked by brace matching, a lightweight item parser ([`items`])
//! recovers brace-matched `fn` spans, and the rules then run word-boundary
//! token scans over the result. That keeps the checker dependency-free,
//! offline, and fast, at the cost of being advisory about exotic syntax —
//! which `cargo clippy` (rule D4) backstops at the semantic level.
//!
//! Diagnostics can be emitted as deterministic JSON ([`report::to_json`])
//! and ratcheted against a committed baseline ([`report::ratchet`]): CI
//! fails on any *new* violation or suppression while the burndown may
//! shrink freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod casts;
pub mod hotpath;
pub mod items;
pub mod report;
pub mod rngrule;

/// The seven invariants distill-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: no panicking constructs in protected non-test code.
    PanicFreedom,
    /// D2: no nondeterministic containers, clocks, or ambient RNG.
    Determinism,
    /// D3: `#![forbid(unsafe_code)]` in every non-exempt crate root.
    UnsafeHygiene,
    /// D4: workspace lint policy present and inherited.
    LintPolicy,
    /// D5: no narrowing or sign-changing `as` casts.
    CastAudit,
    /// D6: RNG construction routes through `stream_rng`; `Aux` tags are
    /// literal, unique, and inside the `Aux` namespace.
    RngDiscipline,
    /// D7: no allocating constructs inside `// lint: hot` functions.
    HotPathAlloc,
}

/// Every rule, in report order.
pub const ALL_RULES: [Rule; 7] = [
    Rule::PanicFreedom,
    Rule::Determinism,
    Rule::UnsafeHygiene,
    Rule::LintPolicy,
    Rule::CastAudit,
    Rule::RngDiscipline,
    Rule::HotPathAlloc,
];

/// Every suppression kind a `// lint: allow(<kind>) — <reason>` comment may
/// name, in report order.
pub const SUPPRESSION_KINDS: &[&str] = &["alloc", "cast", "nondet", "panic", "rng"];

impl Rule {
    /// Short rule code used in reports.
    pub fn code(self) -> &'static str {
        match self {
            Rule::PanicFreedom => "D1",
            Rule::Determinism => "D2",
            Rule::UnsafeHygiene => "D3",
            Rule::LintPolicy => "D4",
            Rule::CastAudit => "D5",
            Rule::RngDiscipline => "D6",
            Rule::HotPathAlloc => "D7",
        }
    }
}

/// A single invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// File the violation is in, relative to the linted workspace root.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// 1-based char columns `[start, end)` of the offending token on that
    /// line; `None` for whole-file/manifest findings.
    pub span: Option<(usize, usize)>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule.code(),
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// A finding that *would* have been a violation but was justified by a
/// `// lint: allow(<kind>) — <reason>` comment. Tracked so the suppression
/// ledger (`xtask lint --list-suppressions`) and the baseline ratchet see
/// the full burndown surface, not just the failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule that would have fired.
    pub rule: Rule,
    /// The allowance kind (`panic`, `nondet`, `cast`, `rng`, `alloc`).
    pub kind: String,
    /// File the suppressed site is in, relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number of the suppressed site.
    pub line: usize,
    /// 1-based char columns `[start, end)` of the suppressed token.
    pub span: Option<(usize, usize)>,
    /// The justification text following the allowance marker.
    pub reason: String,
}

impl fmt::Display for Suppression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: allow({}) — {}",
            self.rule.code(),
            self.file.display(),
            self.line,
            self.kind,
            self.reason
        )
    }
}

/// The full outcome of a lint run: hard failures plus the justified sites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Unjustified findings, sorted by `(file, line, rule, message)`.
    pub violations: Vec<Violation>,
    /// Justified findings, sorted by `(file, line, kind, reason)`.
    pub suppressions: Vec<Suppression>,
}

/// An I/O or manifest-shape error that prevented linting.
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

impl From<std::io::Error> for LintError {
    fn from(e: std::io::Error) -> Self {
        LintError(e.to_string())
    }
}

/// What to lint and how strictly.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Member paths (relative, as written in `members = [...]`) whose
    /// sources are D1/D2/D5/D6/D7-protected and must opt into the workspace
    /// lints.
    pub protected: Vec<String>,
    /// Root-relative source paths in *unprotected* crates that receive the
    /// same per-source D1/D2/D5/D6/D7 scan. This is how individual modules
    /// earn protection without dragging a whole crate onto the list — the
    /// harness persistence modules (`store`, `atomic`) need neither the
    /// `catch_unwind` nor the wall-clock escape hatch their crate exists
    /// for. Paths inside a protected member would be scanned twice; keep
    /// them off this list.
    pub protected_files: Vec<String>,
    /// Member path prefixes exempt from the D3 `forbid(unsafe_code)` check
    /// (vendored compat stubs that mirror upstream APIs).
    pub unsafe_exempt: Vec<String>,
    /// Root-relative source paths that *are* the RNG home: raw seed
    /// arithmetic (D6) is legal only here, and `Stream::Aux` pattern
    /// matches in these files are not construction sites.
    pub rng_exempt: Vec<String>,
}

impl LintConfig {
    /// The configuration for this repository's own workspace.
    pub fn for_repo(root: PathBuf) -> Self {
        LintConfig {
            root,
            protected: [
                "crates/core",
                "crates/billboard",
                "crates/sim",
                "crates/adversary",
                "crates/analysis",
                "crates/service",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            protected_files: [
                "crates/harness/src/atomic.rs",
                "crates/harness/src/codec.rs",
                "crates/harness/src/lease.rs",
                "crates/harness/src/merge.rs",
                "crates/harness/src/store.rs",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            unsafe_exempt: vec!["crates/compat".to_string()],
            rng_exempt: vec!["crates/sim/src/rng.rs".to_string()],
        }
    }
}

// ---------------------------------------------------------------------------
// Lexing: blank strings/chars/comments, keep comments for justifications.
// ---------------------------------------------------------------------------

/// A source file reduced to bare code plus its comments.
#[derive(Debug, Default)]
pub struct Stripped {
    /// The source with strings, char literals, and comments blanked to
    /// spaces. Newlines are preserved, so line numbers match the original.
    pub code: String,
    /// `(1-based line, comment text)` for every comment line encountered.
    pub comments: Vec<(usize, String)>,
}

/// Returns true when `c` can appear in a Rust identifier.
pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into [`Stripped`] form. Handles line and nested block
/// comments, plain/byte/raw strings, and char literals (telling them apart
/// from lifetimes by lookahead).
pub fn strip_source(src: &str) -> Stripped {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(src.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                out.push(' ');
                i += 1;
            }
            comments.push((line, text));
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0usize;
            let mut text = String::new();
            let mut text_line = line;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth = depth.saturating_sub(1);
                    text.push_str("*/");
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else if chars[i] == '\n' {
                    comments.push((text_line, std::mem::take(&mut text)));
                    out.push('\n');
                    line += 1;
                    text_line = line;
                    i += 1;
                } else {
                    text.push(chars[i]);
                    out.push(' ');
                    i += 1;
                }
            }
            comments.push((text_line, text));
            continue;
        }
        // Raw / byte / C string prefixes: r" r#" br" b" c" cr#" ...
        if (c == 'r' || c == 'b' || c == 'c') && (i == 0 || !is_ident(chars[i - 1])) {
            if let Some((quote_idx, hashes)) = string_after_prefix(&chars, i) {
                let raw = chars[i..quote_idx].contains(&'r');
                // Blank the prefix and opening quote.
                for _ in i..=quote_idx {
                    out.push(' ');
                }
                i = quote_idx + 1;
                blank_string_body(&chars, &mut i, &mut out, &mut line, raw, hashes);
                continue;
            }
        }
        // Plain string.
        if c == '"' {
            out.push(' ');
            i += 1;
            blank_string_body(&chars, &mut i, &mut out, &mut line, false, 0);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: blank to the closing quote.
                out.push(' ');
                i += 1;
                out.push(' ');
                i += 1; // the backslash
                if i < n {
                    out.push(' ');
                    i += 1; // the escaped char (first of possibly many)
                }
                while i < n && chars[i] != '\'' {
                    push_blank(&mut out, chars[i], &mut line);
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                // 'x' char literal.
                out.push_str("   ");
                i += 3;
                continue;
            }
            // Lifetime or loop label: plain code.
            out.push('\'');
            i += 1;
            continue;
        }
        if c == '\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }

    Stripped {
        code: out,
        comments,
    }
}

/// Emits a space for `c` (or a newline, bumping `line`).
fn push_blank(out: &mut String, c: char, line: &mut usize) {
    if c == '\n' {
        out.push('\n');
        *line += 1;
    } else {
        out.push(' ');
    }
}

/// If `chars[start..]` begins a prefixed string literal (`r"`, `br#"`,
/// `b"`, …), returns `(index of the opening quote, hash count)`.
fn string_after_prefix(chars: &[char], start: usize) -> Option<(usize, usize)> {
    let n = chars.len();
    let mut j = start;
    let mut letters = 0usize;
    while j < n && matches!(chars[j], 'r' | 'b' | 'c') && letters < 2 {
        j += 1;
        letters += 1;
    }
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        j += 1;
        hashes += 1;
    }
    if j < n && chars[j] == '"' {
        let raw = chars[start..j].contains(&'r');
        if hashes > 0 && !raw {
            return None; // `b#"` is not a string start
        }
        Some((j, hashes))
    } else {
        None
    }
}

/// Blanks a string body starting just after the opening quote; leaves `i`
/// just past the closing delimiter.
fn blank_string_body(
    chars: &[char],
    i: &mut usize,
    out: &mut String,
    line: &mut usize,
    raw: bool,
    hashes: usize,
) {
    let n = chars.len();
    while *i < n {
        let c = chars[*i];
        if !raw && c == '\\' {
            out.push(' ');
            *i += 1;
            if *i < n {
                push_blank(out, chars[*i], line);
                *i += 1;
            }
            continue;
        }
        if c == '"' {
            if raw {
                let mut k = 0usize;
                while k < hashes && *i + 1 + k < n && chars[*i + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    *i += 1 + hashes;
                    return;
                }
                out.push(' ');
                *i += 1;
                continue;
            }
            out.push(' ');
            *i += 1;
            return;
        }
        push_blank(out, c, line);
        *i += 1;
    }
}

// ---------------------------------------------------------------------------
// #[cfg(test)] masking.
// ---------------------------------------------------------------------------

/// Blanks every `#[cfg(test)]`-gated item (module, function, or `use`) in
/// already-stripped code, so the rules only see non-test code. Newlines are
/// preserved.
pub fn mask_cfg_test(code: &str) -> String {
    const MARKER: &str = "#[cfg(test)]";
    let mut chars: Vec<char> = code.chars().collect();
    let marker: Vec<char> = MARKER.chars().collect();
    let mut from = 0usize;
    while let Some(start) = find_chars(&chars, &marker, from) {
        let n = chars.len();
        let mut j = start + marker.len();
        // Find the gated item's body start (`{`) or terminator (`;`).
        let mut open = None;
        while j < n {
            match chars[j] {
                '{' => {
                    open = Some(j);
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(o) => {
                let mut depth = 0usize;
                let mut k = o;
                loop {
                    if k >= n {
                        break n.saturating_sub(1);
                    }
                    match chars[k] {
                        '{' => depth += 1,
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break k;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j.min(n.saturating_sub(1)),
        };
        for slot in chars.iter_mut().take(end + 1).skip(start) {
            if *slot != '\n' {
                *slot = ' ';
            }
        }
        from = end + 1;
    }
    chars.into_iter().collect()
}

/// Finds `needle` in `haystack` starting at `from`.
fn find_chars(haystack: &[char], needle: &[char], from: usize) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&s| &haystack[s..s + needle.len()] == needle)
}

// ---------------------------------------------------------------------------
// Token scanning.
// ---------------------------------------------------------------------------

/// How a token must be anchored to count as a finding.
#[derive(Debug, Clone, Copy)]
pub enum Anchor {
    /// `.word(` or `.word::<…>(` — a method call (e.g. `.unwrap()`,
    /// `.collect::<Vec<_>>()`).
    Method,
    /// `word!` — a macro invocation (e.g. `panic!`).
    Macro,
    /// A bare word-bounded occurrence (e.g. `HashMap`).
    Word,
    /// A `::`-qualified path occurrence (e.g. `Vec::new`), word-bounded at
    /// both ends.
    Path,
}

/// The D1 (panic-freedom) token set.
const PANIC_TOKENS: &[(&str, Anchor)] = &[
    ("unwrap", Anchor::Method),
    ("expect", Anchor::Method),
    ("unwrap_err", Anchor::Method),
    ("expect_err", Anchor::Method),
    ("panic", Anchor::Macro),
    ("unreachable", Anchor::Macro),
    ("todo", Anchor::Macro),
    ("unimplemented", Anchor::Macro),
    ("dbg", Anchor::Macro),
    ("catch_unwind", Anchor::Word),
];

/// The D2 (determinism) token set.
const NONDET_TOKENS: &[(&str, Anchor)] = &[
    ("HashMap", Anchor::Word),
    ("HashSet", Anchor::Word),
    ("thread_rng", Anchor::Word),
    ("from_entropy", Anchor::Word),
    ("Instant", Anchor::Word),
    ("SystemTime", Anchor::Word),
];

/// Scans one line of masked code for anchored tokens; returns
/// `(token, 0-based char column)` for each hit.
pub(crate) fn scan_line(
    line: &str,
    tokens: &[(&'static str, Anchor)],
) -> Vec<(&'static str, usize)> {
    let chars: Vec<char> = line.chars().collect();
    let mut hits = Vec::new();
    for &(word, anchor) in tokens {
        let needle: Vec<char> = word.chars().collect();
        let mut from = 0usize;
        while let Some(at) = find_chars(&chars, &needle, from) {
            from = at + 1;
            let before = at.checked_sub(1).map(|b| chars[b]);
            let after = chars.get(at + needle.len()).copied();
            if before.is_some_and(is_ident) || after.is_some_and(is_ident) {
                continue; // part of a longer identifier
            }
            let anchored = match anchor {
                // The ident-boundary check above already rejects longer
                // identifiers (`MyVec::new`); a leading `::` qualifier is
                // still the same path.
                Anchor::Word | Anchor::Path => true,
                Anchor::Macro => after == Some('!'),
                Anchor::Method => {
                    let prev = chars[..at].iter().rev().find(|c| !c.is_whitespace());
                    let rest: Vec<&char> = chars[at + needle.len()..]
                        .iter()
                        .filter(|c| !c.is_whitespace())
                        .take(2)
                        .collect();
                    let call = rest.first() == Some(&&'(')
                        || (rest.first() == Some(&&':') && rest.get(1) == Some(&&':'));
                    prev == Some(&'.') && call
                }
            };
            if anchored {
                hits.push((word, at));
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// Justification comments.
// ---------------------------------------------------------------------------

/// If `comment` carries `lint: allow(<kind>)` *with* a non-empty reason
/// after it, returns the reason (a bare allowance never suppresses).
fn allow_reason(comment: &str, kind: &str) -> Option<String> {
    let marker = format!("lint: allow({kind})");
    let at = comment.find(&marker)?;
    let rest = comment[at + marker.len()..]
        .trim_start_matches([' ', '\t', '—', '–', '-', ':', ','])
        .trim();
    if rest.chars().filter(|c| !c.is_whitespace()).count() >= 3 {
        Some(rest.to_string())
    } else {
        None
    }
}

/// Returns true when `comment` carries `lint: allow(<kind>)` *with* a
/// non-empty reason after it.
#[cfg(test)]
fn comment_allows(comment: &str, kind: &str) -> bool {
    allow_reason(comment, kind).is_some()
}

/// Finds the justification of `kind` covering `line` (1-based): on the same
/// line or on the contiguous run of comment/attribute lines directly above
/// it. Returns the reason text when justified.
fn allow_reason_at(
    src_lines: &[&str],
    comments: &[(usize, String)],
    line: usize,
    kind: &str,
) -> Option<String> {
    let on = |l: usize| {
        comments
            .iter()
            .filter(|(cl, _)| *cl == l)
            .find_map(|(_, text)| allow_reason(text, kind))
    };
    if let Some(reason) = on(line) {
        return Some(reason);
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let raw = src_lines.get(l - 1).map_or("", |s| s.trim_start());
        let is_annotation = raw.starts_with("//") || raw.starts_with("#[") || raw.starts_with("#!");
        if !is_annotation {
            return None;
        }
        if let Some(reason) = on(l) {
            return Some(reason);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Manifest parsing (just enough TOML).
// ---------------------------------------------------------------------------

/// Extracts the body of `[header]` (lines until the next `[` section).
fn toml_section(text: &str, header: &str) -> Option<String> {
    let mut body = String::new();
    let mut inside = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            if inside {
                break;
            }
            inside = t == format!("[{header}]");
            continue;
        }
        if inside {
            body.push_str(line);
            body.push('\n');
        }
    }
    if body.is_empty() && !text.lines().any(|l| l.trim() == format!("[{header}]")) {
        None
    } else {
        Some(body)
    }
}

/// True when the section body assigns `key` to `value` (quoted or bare).
fn section_assigns(body: &str, key: &str, value: &str) -> bool {
    body.lines().any(|line| {
        let t = line.trim();
        let Some((k, v)) = t.split_once('=') else {
            return false;
        };
        k.trim() == key && v.trim().trim_matches('"') == value
    })
}

/// Parses `members = [...]` out of the `[workspace]` section and expands
/// trailing `/*` globs one directory level.
fn workspace_members(root: &Path, manifest: &str) -> Result<Vec<String>, LintError> {
    let section = toml_section(manifest, "workspace").ok_or_else(|| {
        LintError(format!(
            "{}: no [workspace] section",
            root.join("Cargo.toml").display()
        ))
    })?;
    let Some(open) = section.find("members") else {
        return Ok(Vec::new());
    };
    let after = &section[open..];
    let Some(lb) = after.find('[') else {
        return Ok(Vec::new());
    };
    let Some(rb) = after.find(']') else {
        return Err(LintError("unterminated members list".to_string()));
    };
    let list = &after[lb + 1..rb];
    let mut members = Vec::new();
    for raw in list.split(',') {
        let entry = raw.trim().trim_matches('"').trim();
        if entry.is_empty() {
            continue;
        }
        if let Some(prefix) = entry.strip_suffix("/*") {
            let dir = root.join(prefix);
            let mut expanded: Vec<String> = Vec::new();
            for child in std::fs::read_dir(&dir)? {
                let child = child?;
                if child.path().join("Cargo.toml").is_file() {
                    expanded.push(format!("{prefix}/{}", child.file_name().to_string_lossy()));
                }
            }
            expanded.sort();
            members.extend(expanded);
        } else {
            members.push(entry.to_string());
        }
    }
    Ok(members)
}

// ---------------------------------------------------------------------------
// The lint pass.
// ---------------------------------------------------------------------------

/// The clippy lints rule D4 requires at `deny` in `[workspace.lints.clippy]`.
const REQUIRED_CLIPPY_DENIES: &[&str] = &["unwrap_used", "expect_used", "dbg_macro"];

/// The clippy lints rule D4 requires at `warn` in `[workspace.lints.clippy]`
/// (the semantic backstop for the token-level D5 cast audit).
const REQUIRED_CLIPPY_WARNS: &[&str] = &["cast_possible_truncation", "cast_sign_loss"];

/// Per-file scan state: resolves each finding into a violation or a tracked
/// suppression depending on the justification comments in scope.
struct FileScan<'a> {
    rel: &'a Path,
    src_lines: &'a [&'a str],
    comments: &'a [(usize, String)],
    report: &'a mut LintReport,
}

impl FileScan<'_> {
    fn finding(
        &mut self,
        rule: Rule,
        kind: &'static str,
        line: usize,
        span: Option<(usize, usize)>,
        message: String,
    ) {
        match allow_reason_at(self.src_lines, self.comments, line, kind) {
            Some(reason) => self.report.suppressions.push(Suppression {
                rule,
                kind: kind.to_string(),
                file: self.rel.to_path_buf(),
                line,
                span,
                reason,
            }),
            None => self.report.violations.push(Violation {
                rule,
                file: self.rel.to_path_buf(),
                line,
                span,
                message,
            }),
        }
    }
}

/// Converts a 0-based char column and token into a 1-based `[start, end)`
/// span.
fn token_span(col: usize, token: &str) -> Option<(usize, usize)> {
    Some((col + 1, col + 1 + token.chars().count()))
}

/// Runs every per-source rule (D1, D2, D5, D6, D7) over one file, pushing
/// findings into `report` and literal `Stream::Aux` sites into `aux_sites`
/// for the workspace-wide collision check. `rng_home` marks the module where
/// raw seed arithmetic is legal (D6's exemption).
fn lint_source_report(
    text: &str,
    rel_path: &Path,
    rng_home: bool,
    report: &mut LintReport,
    aux_sites: &mut Vec<rngrule::AuxSite>,
) {
    let stripped = strip_source(text);
    let masked = mask_cfg_test(&stripped.code);
    let src_lines: Vec<&str> = text.lines().collect();
    let mut scan = FileScan {
        rel: rel_path,
        src_lines: &src_lines,
        comments: &stripped.comments,
        report,
    };

    // D1 + D2: line-oriented token scans.
    for (idx, line) in masked.lines().enumerate() {
        let line_no = idx + 1;
        for (token, col) in scan_line(line, PANIC_TOKENS) {
            let message = if token == "catch_unwind" {
                "`catch_unwind` swallows panics instead of preventing them; \
                 move supervision into the unprotected `crates/harness` crate \
                 or justify with `// lint: allow(panic) — <reason>`"
                    .to_string()
            } else {
                format!(
                    "`{token}` can panic; return an error or justify with \
                     `// lint: allow(panic) — <reason>`"
                )
            };
            scan.finding(
                Rule::PanicFreedom,
                "panic",
                line_no,
                token_span(col, token),
                message,
            );
        }
        for (token, col) in scan_line(line, NONDET_TOKENS) {
            scan.finding(
                Rule::Determinism,
                "nondet",
                line_no,
                token_span(col, token),
                format!(
                    "`{token}` is nondeterministic; use an ordered/seeded \
                     alternative or justify with `// lint: allow(nondet) — <reason>`"
                ),
            );
        }
        // D6a: raw seed arithmetic outside the RNG home module.
        if !rng_home {
            for (token, col) in scan_line(line, rngrule::RAW_SEED_TOKENS) {
                scan.finding(
                    Rule::RngDiscipline,
                    "rng",
                    line_no,
                    token_span(col, token),
                    format!(
                        "raw seed construction `{token}` bypasses the stream \
                         derivation; route through `stream_rng(seed, Stream::…)` \
                         or justify with `// lint: allow(rng) — <reason>`"
                    ),
                );
            }
        }
    }

    // D5: lossy-cast audit.
    for site in casts::scan_casts(&masked) {
        if let Some(message) = casts::classify(&site) {
            scan.finding(Rule::CastAudit, "cast", site.line, Some(site.span), message);
        }
    }

    // D6b: `Stream::Aux` construction sites. Non-literal tags fire here;
    // literal tags are deferred to the workspace-wide collision check.
    if !rng_home {
        for mut site in rngrule::scan_aux(&masked) {
            match site.value {
                None => scan.finding(
                    Rule::RngDiscipline,
                    "rng",
                    site.line,
                    Some(site.span),
                    "`Stream::Aux` tag must be an integer literal so the \
                     workspace-wide collision check can audit it; name the \
                     constant inline or justify with `// lint: allow(rng) — <reason>`"
                        .to_string(),
                ),
                Some(_) => {
                    site.file = rel_path.to_path_buf();
                    site.allow_reason =
                        allow_reason_at(&src_lines, &stripped.comments, site.line, "rng");
                    aux_sites.push(site);
                }
            }
        }
    }

    // D7: allocation scan inside `// lint: hot` functions, with
    // debug_assert oracle bodies span-masked out first.
    let fns = items::parse_fns(&masked, &src_lines);
    let hot: Vec<&items::FnItem> = fns
        .iter()
        .filter(|f| hotpath::is_hot(f, &src_lines, &stripped.comments))
        .collect();
    if !hot.is_empty() {
        let alloc_masked = hotpath::mask_debug_asserts(&masked);
        let alloc_lines: Vec<&str> = alloc_masked.lines().collect();
        for f in hot {
            for line_no in f.body_lines.0..=f.body_lines.1 {
                // Attribute each line to its innermost function: a nested
                // (non-hot) helper inside a hot fn is scanned on its own
                // terms, not its host's.
                let owner = items::innermost_containing(&fns, line_no);
                if owner.map(|g| (g.header_line, g.body_lines))
                    != Some((f.header_line, f.body_lines))
                {
                    continue;
                }
                let Some(line) = alloc_lines.get(line_no - 1) else {
                    continue;
                };
                for (token, col) in scan_line(line, hotpath::ALLOC_TOKENS) {
                    scan.finding(
                        Rule::HotPathAlloc,
                        "alloc",
                        line_no,
                        token_span(col, token),
                        format!(
                            "allocating construct `{token}` in `// lint: hot` fn \
                             `{}`; hoist the buffer into reusable scratch state \
                             or justify with `// lint: allow(alloc) — <reason>`",
                            f.name
                        ),
                    );
                }
            }
        }
    }
}

/// Workspace-wide D6 collision check over the collected literal
/// `Stream::Aux` sites: duplicate tags and reserved-namespace wraps.
fn check_aux_collisions(aux_sites: &mut [rngrule::AuxSite], report: &mut LintReport) {
    aux_sites.sort_by(|a, b| (&a.file, a.line, a.span).cmp(&(&b.file, b.line, b.span)));
    let mut first_seen: BTreeMap<u64, (PathBuf, usize)> = BTreeMap::new();
    for site in aux_sites.iter() {
        let Some(value) = site.value else { continue };
        let mut problems: Vec<String> = Vec::new();
        if rngrule::wraps_reserved(value) {
            problems.push(format!(
                "`Stream::Aux({value})` wraps past 2^64 into the reserved \
                 player/singleton tag namespaces (tags at or above 2^64 - 2^41 \
                 alias other streams); pick a small tag"
            ));
        }
        match first_seen.get(&value) {
            Some((file, line)) => problems.push(format!(
                "`Stream::Aux({value})` collides with the same tag at {}:{line}; \
                 every auxiliary stream needs a unique tag",
                file.display()
            )),
            None => {
                first_seen.insert(value, (site.file.clone(), site.line));
            }
        }
        for message in problems {
            match &site.allow_reason {
                Some(reason) => report.suppressions.push(Suppression {
                    rule: Rule::RngDiscipline,
                    kind: "rng".to_string(),
                    file: site.file.clone(),
                    line: site.line,
                    span: Some(site.span),
                    reason: reason.clone(),
                }),
                None => report.violations.push(Violation {
                    rule: Rule::RngDiscipline,
                    file: site.file.clone(),
                    line: site.line,
                    span: Some(site.span),
                    message,
                }),
            }
        }
    }
}

/// Sorts a report into its canonical (deterministic) order.
fn sort_report(report: &mut LintReport) {
    report.violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule)
            .cmp(&(&b.file, b.line, b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    report.suppressions.sort_by(|a, b| {
        (&a.file, a.line, &a.kind)
            .cmp(&(&b.file, b.line, &b.kind))
            .then_with(|| a.reason.cmp(&b.reason))
    });
}

/// Runs all seven rules over the workspace described by `config`, returning
/// both violations and the justified-suppression ledger.
pub fn lint_workspace_report(config: &LintConfig) -> Result<LintReport, LintError> {
    let root_manifest_path = config.root.join("Cargo.toml");
    let root_manifest = std::fs::read_to_string(&root_manifest_path)
        .map_err(|e| LintError(format!("{}: {e}", root_manifest_path.display())))?;
    let mut report = LintReport::default();
    let mut aux_sites: Vec<rngrule::AuxSite> = Vec::new();

    // D4 (root): the clippy panic-lint denies and cast-lint warns must be
    // pinned.
    match toml_section(&root_manifest, "workspace.lints.clippy") {
        None => report.violations.push(Violation {
            rule: Rule::LintPolicy,
            file: PathBuf::from("Cargo.toml"),
            line: 0,
            span: None,
            message: "missing [workspace.lints.clippy] table".to_string(),
        }),
        Some(body) => {
            for lint in REQUIRED_CLIPPY_DENIES {
                if !section_assigns(&body, lint, "deny") {
                    report.violations.push(Violation {
                        rule: Rule::LintPolicy,
                        file: PathBuf::from("Cargo.toml"),
                        line: 0,
                        span: None,
                        message: format!("[workspace.lints.clippy] must set {lint} = \"deny\""),
                    });
                }
            }
            for lint in REQUIRED_CLIPPY_WARNS {
                if !section_assigns(&body, lint, "warn") {
                    report.violations.push(Violation {
                        rule: Rule::LintPolicy,
                        file: PathBuf::from("Cargo.toml"),
                        line: 0,
                        span: None,
                        message: format!(
                            "[workspace.lints.clippy] must set {lint} = \"warn\" \
                             (semantic backstop for D5)"
                        ),
                    });
                }
            }
        }
    }

    let mut members = workspace_members(&config.root, &root_manifest)?;
    if toml_section(&root_manifest, "package").is_some() {
        members.push(".".to_string());
    }

    for member in &members {
        let member_dir = config.root.join(member);
        let manifest_path = member_dir.join("Cargo.toml");
        let manifest = std::fs::read_to_string(&manifest_path)
            .map_err(|e| LintError(format!("{}: {e}", manifest_path.display())))?;
        let is_protected = config.protected.iter().any(|p| p == member);
        let rel_manifest = if member == "." {
            PathBuf::from("Cargo.toml")
        } else {
            PathBuf::from(member).join("Cargo.toml")
        };

        // D4 (member): protected crates must inherit the workspace lints.
        if is_protected {
            let inherits = toml_section(&manifest, "lints")
                .is_some_and(|body| section_assigns(&body, "workspace", "true"))
                || manifest
                    .lines()
                    .any(|l| l.trim().replace(' ', "") == "lints.workspace=true");
            if !inherits {
                report.violations.push(Violation {
                    rule: Rule::LintPolicy,
                    file: rel_manifest.clone(),
                    line: 0,
                    span: None,
                    message: "protected crate must set lints.workspace = true".to_string(),
                });
            }
        }

        // D3: crate roots must forbid unsafe code.
        let exempt = config
            .unsafe_exempt
            .iter()
            .any(|p| member == p || member.starts_with(&format!("{p}/")));
        if !exempt {
            for crate_root in ["src/lib.rs", "src/main.rs"] {
                let path = member_dir.join(crate_root);
                if !path.is_file() {
                    continue;
                }
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| LintError(format!("{}: {e}", path.display())))?;
                let stripped = strip_source(&text);
                if !stripped.code.contains("#![forbid(unsafe_code)]") {
                    report.violations.push(Violation {
                        rule: Rule::UnsafeHygiene,
                        file: rel_source_path(member, crate_root),
                        line: 1,
                        span: None,
                        message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
                    });
                }
            }
        }

        // D1/D2/D5/D6/D7: per-source scans of protected non-test code.
        if is_protected {
            let src_dir = member_dir.join("src");
            let mut files = Vec::new();
            collect_rs_files(&src_dir, &mut files)?;
            for path in files {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| LintError(format!("{}: {e}", path.display())))?;
                let rel = path
                    .strip_prefix(&config.root)
                    .unwrap_or(&path)
                    .to_path_buf();
                let rng_home = config
                    .rng_exempt
                    .iter()
                    .any(|entry| Path::new(entry) == rel.as_path());
                lint_source_report(&text, &rel, rng_home, &mut report, &mut aux_sites);
            }
        }
    }

    // D1/D2/D5/D6/D7: individually protected sources in otherwise
    // unprotected crates (the harness persistence modules — total decode and
    // atomic writes must be panic-free and deterministic even though their
    // crate keeps the supervision escape hatches).
    for entry in &config.protected_files {
        let path = config.root.join(entry);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| LintError(format!("{}: {e}", path.display())))?;
        let rel = PathBuf::from(entry);
        let rng_home = config
            .rng_exempt
            .iter()
            .any(|exempt| Path::new(exempt) == rel.as_path());
        lint_source_report(&text, &rel, rng_home, &mut report, &mut aux_sites);
    }

    check_aux_collisions(&mut aux_sites, &mut report);
    sort_report(&mut report);
    Ok(report)
}

/// Runs all rules over the workspace described by `config`. Returns the
/// violations sorted by `(file, line, rule)`; an empty vector means the
/// workspace passes the gate. Thin wrapper over [`lint_workspace_report`]
/// for callers that only care about hard failures.
pub fn lint_workspace(config: &LintConfig) -> Result<Vec<Violation>, LintError> {
    Ok(lint_workspace_report(config)?.violations)
}

/// Joins a member path and an in-crate source path for reporting.
fn rel_source_path(member: &str, source: &str) -> PathBuf {
    if member == "." {
        PathBuf::from(source)
    } else {
        PathBuf::from(member).join(source)
    }
}

/// Recursively gathers `.rs` files under `dir` in sorted order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the per-source rules (D1, D2, D5, D6, D7) over one file, appending
/// unjustified findings to `violations`. The `Stream::Aux` collision check
/// runs file-locally here; [`lint_workspace_report`] widens it to the whole
/// workspace.
pub fn lint_source(text: &str, rel_path: &Path, violations: &mut Vec<Violation>) {
    let mut report = LintReport::default();
    let mut aux_sites = Vec::new();
    lint_source_report(text, rel_path, false, &mut report, &mut aux_sites);
    check_aux_collisions(&mut aux_sites, &mut report);
    sort_report(&mut report);
    violations.extend(report.violations);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(hits: Vec<(&'static str, usize)>) -> Vec<&'static str> {
        hits.into_iter().map(|(t, _)| t).collect()
    }

    /// The fault-injection module rides inside `crates/sim`, which must stay
    /// on the protected list, and the source walker must actually visit it —
    /// otherwise a rename could silently drop the fault layer out of the
    /// D1/D2 gates.
    #[test]
    fn fault_module_is_under_lint_protection() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let config = LintConfig::for_repo(root.clone());
        assert!(
            config.protected.iter().any(|p| p == "crates/sim"),
            "crates/sim must be a protected crate"
        );
        let mut files = Vec::new();
        collect_rs_files(&root.join("crates/sim/src"), &mut files).expect("walk sim sources");
        assert!(
            files.iter().any(|f| f.ends_with("faults.rs")),
            "lint walker must visit crates/sim/src/faults.rs; saw {files:?}"
        );
    }

    #[test]
    fn service_crate_is_under_lint_protection() {
        // The concurrent service crate carries the same determinism/panic
        // discipline as the substrate it fronts — unlike `crates/harness`,
        // it is production code on the protected list, and its wall-clock
        // sites must go through justified suppressions.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let config = LintConfig::for_repo(root.clone());
        assert!(
            config.protected.iter().any(|p| p == "crates/service"),
            "crates/service must be a protected crate"
        );
        let mut files = Vec::new();
        collect_rs_files(&root.join("crates/service/src"), &mut files)
            .expect("walk service sources");
        assert!(
            files.iter().any(|f| f.ends_with("stress.rs")),
            "lint walker must visit crates/service/src/stress.rs; saw {files:?}"
        );
    }

    /// The harness crate must stay *off* the protected-crate list (its
    /// supervisor legitimately uses `catch_unwind` and wall clocks), while
    /// its persistence modules must stay individually file-protected —
    /// otherwise a rename or a config edit could silently drop the store
    /// format out of the D1/D2 gates.
    #[test]
    fn harness_persistence_modules_are_file_protected() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let config = LintConfig::for_repo(root.clone());
        assert!(
            !config.protected.iter().any(|p| p == "crates/harness"),
            "crates/harness must stay off the protected-crate list"
        );
        for file in [
            "crates/harness/src/atomic.rs",
            "crates/harness/src/codec.rs",
            "crates/harness/src/lease.rs",
            "crates/harness/src/merge.rs",
            "crates/harness/src/store.rs",
        ] {
            assert!(
                config.protected_files.iter().any(|p| p == file),
                "{file} must be on the protected_files list"
            );
            assert!(
                root.join(file).is_file(),
                "{file} listed in protected_files must exist"
            );
        }
        // None of the file-protected paths may sit inside a protected
        // member (that would double-scan and double-report).
        for file in &config.protected_files {
            assert!(
                !config
                    .protected
                    .iter()
                    .any(|member| file.starts_with(&format!("{member}/"))),
                "{file} is already covered by a protected crate"
            );
        }
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"call .unwrap() now\"; // and .expect( too\nlet b = 'x';";
        let s = strip_source(src);
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("expect"));
        assert!(!s.code.contains('x'));
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].1.contains(".expect("));
        // Line structure is preserved.
        assert_eq!(s.code.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet r = r#\"panic!(\"no\")\"#;";
        let s = strip_source(src);
        assert!(s.code.contains("fn f<'a>"));
        assert!(!s.code.contains("panic"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner panic!() */ still comment */ let x = 1;";
        let s = strip_source(src);
        assert!(!s.code.contains("panic"));
        assert!(s.code.contains("let x = 1;"));
    }

    #[test]
    fn cfg_test_spans_are_masked() {
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}";
        let masked = mask_cfg_test(&strip_source(src).code);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("fn ok"));
        assert!(masked.contains("fn more"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn method_anchor_requires_dot_and_paren() {
        assert_eq!(names(scan_line("x.unwrap()", PANIC_TOKENS)), vec!["unwrap"]);
        assert!(scan_line("x.unwrap_or(0)", PANIC_TOKENS).is_empty());
        assert!(scan_line("fn unwrap(x: u32) {}", PANIC_TOKENS).is_empty());
        assert!(scan_line("#[allow(clippy::expect_used)]", PANIC_TOKENS).is_empty());
        assert_eq!(
            names(scan_line("panic!(\"boom\")", PANIC_TOKENS)),
            vec!["panic"]
        );
        assert!(scan_line("debug_assert!(true)", PANIC_TOKENS).is_empty());
    }

    #[test]
    fn method_anchor_accepts_turbofish() {
        use crate::hotpath::ALLOC_TOKENS;
        assert_eq!(
            names(scan_line("let v = it.collect::<Vec<_>>();", ALLOC_TOKENS)),
            vec!["collect"]
        );
        assert_eq!(
            names(scan_line("let v = it.collect();", ALLOC_TOKENS)),
            vec!["collect"]
        );
        // A path mention without a receiver dot is not a method call.
        assert!(scan_line("map(Clone::clone)", ALLOC_TOKENS).is_empty());
    }

    #[test]
    fn path_anchor_matches_qualified_constructors() {
        use crate::hotpath::ALLOC_TOKENS;
        assert_eq!(
            names(scan_line("let v = Vec::new();", ALLOC_TOKENS)),
            vec!["Vec::new"]
        );
        assert_eq!(
            names(scan_line("let v = std::vec::Vec::new();", ALLOC_TOKENS)),
            vec!["Vec::new"]
        );
        // `MyVec::new` must not match `Vec::new`.
        assert!(scan_line("let v = MyVec::new();", ALLOC_TOKENS).is_empty());
        // The bare type name in a signature is not a construction.
        assert!(scan_line("fn f(xs: &Vec<u32>) {}", ALLOC_TOKENS).is_empty());
    }

    #[test]
    fn word_anchor_bounds() {
        assert_eq!(
            scan_line("use std::collections::HashMap;", NONDET_TOKENS).len(),
            1
        );
        assert!(scan_line("let MyHashMapLike = 3;", NONDET_TOKENS).is_empty());
        assert_eq!(
            names(scan_line("Instant::now()", NONDET_TOKENS)),
            vec!["Instant"]
        );
    }

    #[test]
    fn scan_line_reports_columns() {
        let hits = scan_line("    x.unwrap()", PANIC_TOKENS);
        assert_eq!(hits, vec![("unwrap", 6)]);
    }

    #[test]
    fn justification_requires_a_reason() {
        assert!(comment_allows(
            "// lint: allow(panic) — scoped threads fill every slot",
            "panic"
        ));
        assert!(comment_allows(
            "// lint: allow(nondet): cache only",
            "nondet"
        ));
        assert!(!comment_allows("// lint: allow(panic)", "panic"));
        assert!(!comment_allows("// lint: allow(panic) — ", "panic"));
        assert!(!comment_allows("// lint: allow(nondet) x", "nondet"));
    }

    #[test]
    fn allow_reason_extracts_the_text() {
        assert_eq!(
            allow_reason("// lint: allow(cast) — bounded by the u32 universe", "cast").as_deref(),
            Some("bounded by the u32 universe")
        );
        assert_eq!(allow_reason("// lint: allow(cast)", "cast"), None);
        assert_eq!(allow_reason("// lint: allow(cast) — ok", "alloc"), None);
    }

    #[test]
    fn allowance_looks_upward_through_annotations() {
        let src = "// lint: allow(panic) — provably infallible here\n#[allow(clippy::expect_used)]\nlet v = x.expect(\"set\");\n";
        let mut v = Vec::new();
        lint_source(src, Path::new("t.rs"), &mut v);
        assert!(v.is_empty(), "justified site must not fire: {v:?}");

        let src2 = "let ready = true;\n// lint: allow(panic) — reason\nlet a = 1;\nlet v = x.expect(\"set\");\n";
        let mut v2 = Vec::new();
        lint_source(src2, Path::new("t.rs"), &mut v2);
        assert_eq!(v2.len(), 1, "non-adjacent comment must not suppress");
    }

    #[test]
    fn toml_helpers() {
        let manifest = "[workspace]\nmembers = [\n  \"a\",\n  \"b\",\n]\n\n[workspace.lints.clippy]\nunwrap_used = \"deny\"\n";
        let body = toml_section(manifest, "workspace.lints.clippy").unwrap();
        assert!(section_assigns(&body, "unwrap_used", "deny"));
        assert!(!section_assigns(&body, "expect_used", "deny"));
        assert!(toml_section(manifest, "package").is_none());
    }

    #[test]
    fn lint_source_runs_the_new_rules() {
        let src = "\
// lint: hot
pub fn hot_loop(xs: &[u64]) -> u32 {
    let mut buf = Vec::new();
    buf.push(xs.len() as u32);
    buf[0]
}
";
        let mut v = Vec::new();
        lint_source(src, Path::new("t.rs"), &mut v);
        let codes: Vec<&str> = v.iter().map(|x| x.rule.code()).collect();
        assert!(codes.contains(&"D7"), "Vec::new in hot fn: {v:?}");
        assert!(codes.contains(&"D5"), "narrowing cast: {v:?}");
        // Spans are 1-based char columns over the token.
        let d7 = v.iter().find(|x| x.rule == Rule::HotPathAlloc).unwrap();
        assert_eq!(d7.span, Some((19, 27)));
    }
}
