//! Command-line entry point for the workspace tasks.
//!
//! `cargo run -p xtask -- lint` runs distill-lint over the workspace and
//! exits non-zero when any invariant is violated. See `xtask::lint_workspace`
//! and `DESIGN.md` for the rule set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use xtask::{lint_workspace, LintConfig};

const USAGE: &str = "usage: cargo run -p xtask -- lint [--root <dir>] [--protected a,b,c]

Runs distill-lint, the workspace invariant checker:
  D1  panic-freedom in protected non-test code
  D2  determinism (no hash containers, clocks, or ambient RNG)
  D3  #![forbid(unsafe_code)] in every non-exempt crate root
  D4  [workspace.lints] policy present and inherited

Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.";

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut args = args.into_iter();
    match args.next().as_deref() {
        Some("lint") => {}
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            return if args.next().is_none() { 0 } else { 2 };
        }
        Some(other) => {
            eprintln!("unknown task `{other}`\n{USAGE}");
            return 2;
        }
    }

    let mut root: Option<PathBuf> = None;
    let mut protected: Option<Vec<String>> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return 2;
                }
            },
            "--protected" => match args.next() {
                Some(list) => {
                    protected = Some(
                        list.split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(String::from)
                            .collect(),
                    )
                }
                None => {
                    eprintln!("--protected needs a comma-separated list\n{USAGE}");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return 2;
            }
        }
    }

    let root = root.unwrap_or_else(default_root);
    let mut config = LintConfig::for_repo(root);
    if let Some(p) = protected {
        config.protected = p;
    }

    match lint_workspace(&config) {
        Ok(violations) if violations.is_empty() => {
            println!("distill-lint: workspace clean (rules D1–D4)");
            0
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("distill-lint: {} violation(s)", violations.len());
            1
        }
        Err(e) => {
            eprintln!("distill-lint: error: {e}");
            2
        }
    }
}

/// The workspace root: two levels above this crate's manifest dir, which is
/// where `cargo run -p xtask` executes from under any working directory.
fn default_root() -> PathBuf {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
