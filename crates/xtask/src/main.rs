//! Command-line entry point for the workspace tasks.
//!
//! `cargo run -p xtask -- lint` runs distill-lint over the workspace and
//! exits non-zero when any invariant is violated. See
//! `xtask::lint_workspace_report` and `DESIGN.md` §9/§14 for the rule set,
//! the JSON diagnostics schema, and the baseline-ratchet workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use xtask::{lint_workspace_report, report, LintConfig};

const USAGE: &str = "usage: cargo run -p xtask -- lint [options]

Runs distill-lint, the workspace invariant checker:
  D1  panic-freedom in protected non-test code
  D2  determinism (no hash containers, clocks, or ambient RNG)
  D3  #![forbid(unsafe_code)] in every non-exempt crate root
  D4  [workspace.lints] policy present and inherited
  D5  no narrowing/sign-changing `as` casts (use typed conversions)
  D6  RNG via stream_rng(seed, Stream::…); Aux tags literal + collision-free
  D7  no allocating constructs in `// lint: hot` functions

Options:
  --root <dir>              lint this workspace root (default: this repo)
  --protected a,b,c         override the protected member list
  --format text|json        diagnostics format (default: text)
  --baseline <path>         ratchet mode: fail only on counts above the
                            committed baseline (burndown may shrink freely)
  --write-baseline <path>   bless the current counts as the new baseline
  --list-suppressions       print the ledger of justified `lint: allow` sites

Exit codes: 0 clean (or within baseline), 1 violations (or ratchet breach),
2 usage or I/O error.";

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

struct Options {
    root: Option<PathBuf>,
    protected: Option<Vec<String>>,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list_suppressions: bool,
}

fn parse_options(mut args: std::vec::IntoIter<String>) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        protected: None,
        json: false,
        baseline: None,
        write_baseline: None,
        list_suppressions: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return Err("--root needs a directory".to_string()),
            },
            "--protected" => match args.next() {
                Some(list) => {
                    opts.protected = Some(
                        list.split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(String::from)
                            .collect(),
                    )
                }
                None => return Err("--protected needs a comma-separated list".to_string()),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                _ => return Err("--format needs `text` or `json`".to_string()),
            },
            "--baseline" => match args.next() {
                Some(path) => opts.baseline = Some(PathBuf::from(path)),
                None => return Err("--baseline needs a file path".to_string()),
            },
            "--write-baseline" => match args.next() {
                Some(path) => opts.write_baseline = Some(PathBuf::from(path)),
                None => return Err("--write-baseline needs a file path".to_string()),
            },
            "--list-suppressions" => opts.list_suppressions = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn run(args: Vec<String>) -> i32 {
    let mut args = args.into_iter();
    match args.next().as_deref() {
        Some("lint") => {}
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            return if args.next().is_none() { 0 } else { 2 };
        }
        Some(other) => {
            eprintln!("unknown task `{other}`\n{USAGE}");
            return 2;
        }
    }

    let opts = match parse_options(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return 2;
        }
    };

    let root = opts.root.clone().unwrap_or_else(default_root);
    let mut config = LintConfig::for_repo(root);
    if let Some(p) = opts.protected.clone() {
        config.protected = p;
    }

    let lint_report = match lint_workspace_report(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("distill-lint: error: {e}");
            return 2;
        }
    };
    let counts = report::Counts::of(&lint_report);

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, report::baseline_json(&counts)) {
            eprintln!("distill-lint: cannot write {}: {e}", path.display());
            return 2;
        }
        println!(
            "distill-lint: baseline blessed at {} ({} violation(s), {} suppression(s))",
            path.display(),
            counts.total_violations(),
            counts.total_suppressions()
        );
        return 0;
    }

    if opts.list_suppressions {
        for s in &lint_report.suppressions {
            println!("{s}");
        }
        println!(
            "distill-lint: {} justified suppression(s)",
            lint_report.suppressions.len()
        );
        return 0;
    }

    // Ratchet mode: compare against the committed baseline.
    let ratchet = match &opts.baseline {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("distill-lint: cannot read {}: {e}", path.display());
                    return 2;
                }
            };
            match report::parse_baseline(&text) {
                Ok(baseline) => Some(report::ratchet(&counts, &baseline)),
                Err(e) => {
                    eprintln!("distill-lint: {e}");
                    return 2;
                }
            }
        }
    };

    if opts.json {
        print!("{}", report::to_json(&lint_report));
    } else {
        for v in &lint_report.violations {
            println!("{v}");
        }
    }

    match ratchet {
        Some((breaches, shrank)) => {
            for b in &breaches {
                eprintln!("distill-lint: ratchet breach: {b}");
            }
            if breaches.is_empty() {
                if shrank {
                    eprintln!(
                        "distill-lint: burndown shrank below the baseline; tighten the \
                         ratchet with `cargo run -p xtask -- lint --write-baseline \
                         lint-baseline.json`"
                    );
                }
                if !opts.json {
                    println!(
                        "distill-lint: within baseline ({} violation(s), {} suppression(s))",
                        counts.total_violations(),
                        counts.total_suppressions()
                    );
                }
                0
            } else {
                1
            }
        }
        None => {
            if lint_report.violations.is_empty() {
                if !opts.json {
                    println!(
                        "distill-lint: workspace clean (rules D1–D7, {} justified suppression(s))",
                        lint_report.suppressions.len()
                    );
                }
                0
            } else {
                if !opts.json {
                    println!(
                        "distill-lint: {} violation(s)",
                        lint_report.violations.len()
                    );
                }
                1
            }
        }
    }
}

/// The workspace root: two levels above this crate's manifest dir, which is
/// where `cargo run -p xtask` executes from under any working directory.
fn default_root() -> PathBuf {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
