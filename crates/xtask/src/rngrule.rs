//! D6 — RNG stream discipline.
//!
//! Bit-exact determinism across thread counts (DESIGN.md §7, §13) holds
//! because every random decision draws from a `stream_rng(seed, Stream::…)`
//! stream with a collision-free tag layout: player tags occupy `[0, 2^32)`,
//! singleton streams sit at `2^40 + i`, and auxiliary streams map
//! `Aux(k)` to `2^41 + k`. Two things can silently break it:
//!
//! 1. **Raw seed arithmetic** outside `crates/sim/src/rng.rs` — hand-rolled
//!    `seed_from_u64(seed ^ 17)` constructions reintroduce exactly the
//!    cross-stream correlation the SplitMix64 derivation exists to prevent.
//! 2. **`Aux` tag collisions** — two subsystems picking the same `k`, or a
//!    `k` large enough that `2^41 + k` wraps back into the reserved player
//!    and singleton namespaces.
//!
//! This pass flags raw-seed tokens in protected crates outside the RNG home
//! module, requires `Stream::Aux` tags to be integer literals (a computed
//! tag cannot be collision-checked statically), and collects every literal
//! tag *workspace-wide* to detect duplicates and namespace wraps.
//! Justification: `// lint: allow(rng) — <reason>`.

use std::path::PathBuf;

use crate::items::{line_of, line_starts};
use crate::{is_ident, Anchor};

/// Raw seed-construction tokens: outside the RNG home module these bypass
/// the stream derivation.
pub const RAW_SEED_TOKENS: &[(&str, Anchor)] = &[
    ("seed_from_u64", Anchor::Word),
    ("from_seed", Anchor::Word),
    ("derive_seed", Anchor::Word),
    ("splitmix64", Anchor::Word),
];

/// The reserved tag space: `Aux(k)` maps to `(1 << 41) + k`, so any `k` at
/// or above `2^64 - 2^41` wraps back under `2^41` into the player /
/// singleton namespaces.
pub const AUX_WRAP_THRESHOLD: u128 = (1u128 << 64) - (1u128 << 41);

/// One `Stream::Aux(…)` construction site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuxSite {
    /// Repo-relative source path (filled in by the workspace walk).
    pub file: PathBuf,
    /// 1-based line of the `Stream::Aux` token.
    pub line: usize,
    /// 1-based char columns `[start, end)` of `Stream::Aux(…)` on that line.
    pub span: (usize, usize),
    /// The literal tag value; `None` when the argument is not an integer
    /// literal (pattern binding, computed expression).
    pub value: Option<u64>,
    /// Reason attached via `// lint: allow(rng) — <reason>`, if any;
    /// resolved eagerly because the collision check runs after per-file
    /// context is gone.
    pub allow_reason: Option<String>,
}

/// Scans masked code for `Stream::Aux(…)` sites. `file`/`allow_reason` are
/// left empty for the caller to fill in.
pub fn scan_aux(masked: &str) -> Vec<AuxSite> {
    let needle: Vec<char> = "Stream::Aux".chars().collect();
    let chars: Vec<char> = masked.chars().collect();
    let starts = line_starts(&chars);
    let n = chars.len();
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i + needle.len() <= n {
        if chars[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let bounded = (i == 0 || !(is_ident(chars[i - 1]) || chars[i - 1] == ':'))
            && chars.get(i + needle.len()).map_or(true, |&c| !is_ident(c));
        if !bounded {
            i += needle.len();
            continue;
        }
        let mut j = i + needle.len();
        while j < n && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'(') {
            // A bare path mention (e.g. in a `use` list): not a construction.
            i = j;
            continue;
        }
        // Balanced argument group.
        let mut depth = 0usize;
        let mut k = j;
        while k < n {
            match chars[k] {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let arg: String = chars[j + 1..k.min(n)].iter().collect();
        let line = line_of(&starts, i);
        let col = i - starts[line - 1] + 1;
        let end_col = k.min(n.saturating_sub(1)) + 1 - starts[line - 1] + 1;
        sites.push(AuxSite {
            file: PathBuf::new(),
            line,
            span: (col, end_col.min(col + 200)),
            value: parse_u64_literal(arg.trim()),
            allow_reason: None,
        });
        i = k.saturating_add(1);
    }
    sites
}

/// Parses an integer literal (decimal, `0x`/`0o`/`0b`, `_` separators,
/// optional `u64`/`usize` suffix) to a `u64`.
fn parse_u64_literal(text: &str) -> Option<u64> {
    let body = text
        .strip_suffix("u64")
        .or_else(|| text.strip_suffix("usize"))
        .or_else(|| text.strip_suffix("u32"))
        .unwrap_or(text);
    let body: String = body.chars().filter(|&c| c != '_').collect();
    if body.is_empty() {
        return None;
    }
    let (digits, radix) = if let Some(hex) = body.strip_prefix("0x") {
        (hex.to_string(), 16)
    } else if let Some(oct) = body.strip_prefix("0o") {
        (oct.to_string(), 8)
    } else if let Some(bin) = body.strip_prefix("0b") {
        (bin.to_string(), 2)
    } else {
        (body, 10)
    };
    u64::from_str_radix(&digits, radix).ok()
}

/// Whether a literal tag wraps out of the `Aux` namespace into reserved
/// stream-tag space.
pub fn wraps_reserved(value: u64) -> bool {
    u128::from(value) >= AUX_WRAP_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_literal_and_computed_aux_tags() {
        let src = "let a = stream_rng(s, Stream::Aux(7));\nlet b = stream_rng(s, Stream::Aux(base + 1));\n";
        let sites = scan_aux(src);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].value, Some(7));
        assert_eq!(sites[0].line, 1);
        assert_eq!(sites[1].value, None);
    }

    #[test]
    fn literal_forms_parse() {
        assert_eq!(parse_u64_literal("42"), Some(42));
        assert_eq!(parse_u64_literal("4_2u64"), Some(42));
        assert_eq!(parse_u64_literal("0x2A"), Some(42));
        assert_eq!(parse_u64_literal("0b101010"), Some(42));
        assert_eq!(parse_u64_literal("k"), None);
        assert_eq!(parse_u64_literal(""), None);
    }

    #[test]
    fn match_arm_binding_is_a_computed_tag() {
        // `Stream::Aux(k) => …` in a pattern position parses as non-literal;
        // only the RNG home module (exempt) may match on tags.
        let sites = scan_aux("match s { Stream::Aux(k) => k, _ => 0 }");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].value, None);
    }

    #[test]
    fn wrap_threshold() {
        assert!(!wraps_reserved(0));
        assert!(!wraps_reserved((1u64 << 63) - 1));
        assert!(wraps_reserved(u64::MAX));
        assert!(wraps_reserved(u64::MAX - (1u64 << 41) + 1));
        assert!(!wraps_reserved(u64::MAX - (1u64 << 41)));
    }

    #[test]
    fn bare_path_mention_is_not_a_site() {
        let sites =
            scan_aux("use crate::rng::Stream; // Stream::Aux docs\nlet t = Stream::Adversary;\n");
        assert!(sites.is_empty());
    }
}
