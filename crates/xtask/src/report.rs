//! Structured diagnostics, the suppression ledger, and the baseline ratchet.
//!
//! `xtask lint --format json` emits a deterministic document (sorted
//! entries, stable key order, no timestamps) so CI can archive diagnostics
//! as an artifact and diff them across commits. The committed
//! `lint-baseline.json` holds per-rule violation counts and per-kind
//! suppression counts; `--baseline` compares the current run against it and
//! fails only when a count *exceeds* the baseline — a ratchet, not a
//! threshold: the burndown may shrink freely, and shrinking prints a hint
//! to re-bless so the ratchet tightens.
//!
//! Everything here is hand-rolled (no serde): the schema is flat, the
//! writer is ~60 lines, and xtask stays dependency-free and offline.

use std::collections::BTreeMap;

use crate::{LintError, LintReport, ALL_RULES, SUPPRESSION_KINDS};

/// Aggregated per-rule / per-kind counts for ratcheting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    /// Violations keyed by rule code (`"D1"` … `"D7"`), all rules present.
    pub violations: BTreeMap<String, u64>,
    /// Suppressions keyed by kind (`"alloc"`, `"cast"`, …), all kinds
    /// present.
    pub suppressions: BTreeMap<String, u64>,
}

impl Counts {
    /// Tallies a report. Every known rule code and suppression kind is
    /// present in the maps (zero-filled), so ratchets and JSON output are
    /// schema-stable as the burndown empties.
    pub fn of(report: &LintReport) -> Self {
        let mut counts = Self::default();
        for rule in ALL_RULES {
            counts.violations.insert(rule.code().to_string(), 0);
        }
        for kind in SUPPRESSION_KINDS {
            counts.suppressions.insert((*kind).to_string(), 0);
        }
        for v in &report.violations {
            *counts
                .violations
                .entry(v.rule.code().to_string())
                .or_insert(0) += 1;
        }
        for s in &report.suppressions {
            *counts.suppressions.entry(s.kind.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Sum of all per-rule violation counts.
    pub fn total_violations(&self) -> u64 {
        self.violations.values().sum()
    }

    /// Sum of all per-kind suppression counts.
    pub fn total_suppressions(&self) -> u64 {
        self.suppressions.values().sum()
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn span_json(span: Option<(usize, usize)>) -> String {
    match span {
        Some((a, b)) => format!("[{a}, {b}]"),
        None => "null".to_string(),
    }
}

fn counts_obj(map: &BTreeMap<String, u64>, indent: &str) -> String {
    let body: Vec<String> = map
        .iter()
        .map(|(k, v)| format!("{indent}  \"{}\": {v}", json_escape(k)))
        .collect();
    format!("{{\n{}\n{indent}}}", body.join(",\n"))
}

/// Renders the full diagnostics document. Deterministic: the caller sorts
/// the report; maps are `BTreeMap`s; there are no timestamps or absolute
/// paths.
pub fn to_json(report: &LintReport) -> String {
    let counts = Counts::of(report);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"distill-lint\",\n");
    out.push_str("  \"version\": 2,\n");
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        out.push_str(&format!(
            "{sep}    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"span\": {}, \"message\": \"{}\"}}",
            v.rule.code(),
            json_escape(&v.file.display().to_string()),
            v.line,
            span_json(v.span),
            json_escape(&v.message)
        ));
    }
    if report.violations.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"suppressions\": [");
    for (i, s) in report.suppressions.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        out.push_str(&format!(
            "{sep}    {{\"rule\": \"{}\", \"kind\": \"{}\", \"file\": \"{}\", \"line\": {}, \"span\": {}, \"reason\": \"{}\"}}",
            s.rule.code(),
            json_escape(&s.kind),
            json_escape(&s.file.display().to_string()),
            s.line,
            span_json(s.span),
            json_escape(&s.reason)
        ));
    }
    if report.suppressions.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str(&format!(
        "  \"counts\": {{\n    \"violations\": {},\n    \"suppressions\": {}\n  }}\n",
        counts_obj(&counts.violations, "    "),
        counts_obj(&counts.suppressions, "    ")
    ));
    out.push_str("}\n");
    out
}

/// Renders the baseline document for `--write-baseline`.
pub fn baseline_json(counts: &Counts) -> String {
    format!(
        "{{\n  \"version\": 1,\n  \"violations\": {},\n  \"suppressions\": {}\n}}\n",
        counts_obj(&counts.violations, "  "),
        counts_obj(&counts.suppressions, "  ")
    )
}

/// Parses a baseline document. Minimal scanner for the flat schema this
/// tool writes: two named sections of `"key": number` pairs. Unknown keys
/// are kept (forward-compatible); a malformed document is an error rather
/// than a silently-empty baseline.
pub fn parse_baseline(text: &str) -> Result<Counts, LintError> {
    let mut counts = Counts::default();
    let mut section: Option<bool> = None; // Some(true) = violations
    let mut found_any = false;
    for raw in text.lines() {
        let line = raw.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            if line.starts_with('}') {
                section = None;
            }
            continue;
        };
        let Some((key, tail)) = rest.split_once('"') else {
            continue;
        };
        let tail = tail.trim_start().strip_prefix(':').map(str::trim_start);
        match key {
            "violations" => {
                section = Some(true);
                continue;
            }
            "suppressions" => {
                section = Some(false);
                continue;
            }
            _ => {}
        }
        let Some(value) = tail else { continue };
        if let Ok(n) = value.parse::<u64>() {
            match section {
                Some(true) => {
                    counts.violations.insert(key.to_string(), n);
                    found_any = true;
                }
                Some(false) => {
                    counts.suppressions.insert(key.to_string(), n);
                    found_any = true;
                }
                None => {} // top-level scalars like "version"
            }
        }
    }
    if !found_any {
        return Err(LintError(
            "baseline has no violation/suppression counts; regenerate with \
             `xtask lint --write-baseline lint-baseline.json`"
                .to_string(),
        ));
    }
    Ok(counts)
}

/// One ratchet breach: a count that exceeds its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breach {
    /// The rule code (violations) or suppression kind that grew.
    pub key: String,
    /// The count in the current run.
    pub current: u64,
    /// The committed baseline count it exceeds.
    pub baseline: u64,
    /// Whether this key counts violations (true) or suppressions (false).
    pub is_violation: bool,
}

impl std::fmt::Display for Breach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = if self.is_violation {
            "violations"
        } else {
            "suppressions"
        };
        write!(
            f,
            "{} {}: {} exceeds baseline {}",
            self.key, what, self.current, self.baseline
        )
    }
}

/// Compares current counts against the baseline. Returns the breaches
/// (counts above baseline) and whether anything shrank (a hint to
/// re-bless so the ratchet tightens). Keys absent from the baseline
/// default to 0 — a brand-new rule starts fully ratcheted.
pub fn ratchet(current: &Counts, baseline: &Counts) -> (Vec<Breach>, bool) {
    let mut breaches = Vec::new();
    let mut shrank = false;
    for (key, &cur) in &current.violations {
        let base = baseline.violations.get(key).copied().unwrap_or(0);
        if cur > base {
            breaches.push(Breach {
                key: key.clone(),
                current: cur,
                baseline: base,
                is_violation: true,
            });
        } else if cur < base {
            shrank = true;
        }
    }
    for (key, &cur) in &current.suppressions {
        let base = baseline.suppressions.get(key).copied().unwrap_or(0);
        if cur > base {
            breaches.push(Breach {
                key: key.clone(),
                current: cur,
                baseline: base,
                is_violation: false,
            });
        } else if cur < base {
            shrank = true;
        }
    }
    (breaches, shrank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rule, Suppression, Violation};
    use std::path::PathBuf;

    fn sample_report() -> LintReport {
        LintReport {
            violations: vec![Violation {
                rule: Rule::CastAudit,
                file: PathBuf::from("member/src/lib.rs"),
                line: 4,
                span: Some((13, 19)),
                message: "possibly narrowing cast `as u32`".to_string(),
            }],
            suppressions: vec![Suppression {
                rule: Rule::PanicFreedom,
                kind: "panic".to_string(),
                file: PathBuf::from("member/src/lib.rs"),
                line: 9,
                span: Some((5, 11)),
                reason: "empty input is rejected at the CLI boundary".to_string(),
            }],
        }
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let report = sample_report();
        let a = to_json(&report);
        let b = to_json(&report);
        assert_eq!(a, b);
        assert!(a.contains("\"tool\": \"distill-lint\""));
        assert!(a.contains("\"rule\": \"D5\""));
        assert!(a.contains("\"span\": [13, 19]"));
        assert!(a.contains("\"kind\": \"panic\""));
        // Every rule and kind appears in counts even at zero.
        for code in ["D1", "D2", "D3", "D4", "D5", "D6", "D7"] {
            assert!(a.contains(&format!("\"{code}\":")), "missing {code}");
        }
        for kind in SUPPRESSION_KINDS {
            assert!(a.contains(&format!("\"{kind}\":")), "missing {kind}");
        }
    }

    #[test]
    fn baseline_round_trips() {
        let counts = Counts::of(&sample_report());
        let text = baseline_json(&counts);
        let parsed = parse_baseline(&text).expect("parses");
        assert_eq!(parsed.violations, counts.violations);
        assert_eq!(parsed.suppressions, counts.suppressions);
    }

    #[test]
    fn empty_baseline_is_an_error_not_a_free_pass() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("not json at all").is_err());
    }

    #[test]
    fn ratchet_fails_only_on_growth() {
        let current = Counts::of(&sample_report());
        // Equal baseline: clean.
        let (breaches, shrank) = ratchet(&current, &current);
        assert!(breaches.is_empty());
        assert!(!shrank);
        // Baseline above current: clean, but flags shrinkage.
        let mut loose = current.clone();
        loose.violations.insert("D5".to_string(), 5);
        let (breaches, shrank) = ratchet(&current, &loose);
        assert!(breaches.is_empty());
        assert!(shrank);
        // Baseline below current: breach, attributed to the right key.
        let mut tight = current.clone();
        tight.violations.insert("D5".to_string(), 0);
        let (breaches, _) = ratchet(&current, &tight);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].key, "D5");
        assert!(breaches[0].is_violation);
        assert!(breaches[0].to_string().contains("exceeds baseline"));
    }

    #[test]
    fn new_rule_missing_from_baseline_starts_ratcheted() {
        let current = Counts::of(&sample_report());
        let empty = parse_baseline("{\n \"violations\": {\n \"D1\": 0\n }\n}").expect("parses");
        let (breaches, _) = ratchet(&current, &empty);
        assert!(breaches.iter().any(|b| b.key == "D5"));
        assert!(breaches.iter().any(|b| b.key == "panic" && !b.is_violation));
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
