//! D5 — lossy-cast audit.
//!
//! PR 6 established the u32 id-space contract (`PlayerId::from_index`,
//! `player_count`, `TryFrom` conversions); the remaining way to silently
//! break it is a bare `expr as u32`. This pass finds every `as <numeric>`
//! cast in masked code and classifies it:
//!
//! - **Visible source type** (a chained cast `x as u64 as u32` or a suffixed
//!   literal `5i64 as u64`): flagged when the conversion can lose
//!   information — truncation, sign change, or float-precision loss
//!   (`u64 as f64` is inexact above 2^53).
//! - **Invisible source type** with a *narrow* target (`u8..u32`, `i8..i32`,
//!   `f32`): flagged as possibly-narrowing, because a token scanner cannot
//!   prove the source fits. Widening targets (`u64`/`usize`/`i64`/`f64`…)
//!   pass — a cast to a 64-bit target is lossy only from 128-bit or float
//!   sources, which this codebase's protected crates do not use on those
//!   paths, and clippy's `cast_possible_truncation`/`cast_sign_loss`
//!   (enabled at `warn` in `[workspace.lints]`) backstop the scan
//!   semantically, mirroring how D4 backstops D1.
//!
//! Justification: `// lint: allow(cast) — <reason>` per the DESIGN.md §9
//! convention.

use crate::is_ident;
use crate::items::{line_of, line_starts};

/// A primitive numeric type named as a cast target (or visible source).
/// Variants mirror the Rust primitive names one-to-one.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumTy {
    U8,
    U16,
    U32,
    U64,
    U128,
    Usize,
    I8,
    I16,
    I32,
    I64,
    I128,
    Isize,
    F32,
    F64,
}

impl NumTy {
    /// Parses a primitive numeric type name.
    pub fn parse(word: &str) -> Option<Self> {
        Some(match word {
            "u8" => Self::U8,
            "u16" => Self::U16,
            "u32" => Self::U32,
            "u64" => Self::U64,
            "u128" => Self::U128,
            "usize" => Self::Usize,
            "i8" => Self::I8,
            "i16" => Self::I16,
            "i32" => Self::I32,
            "i64" => Self::I64,
            "i128" => Self::I128,
            "isize" => Self::Isize,
            "f32" => Self::F32,
            "f64" => Self::F64,
            _ => return None,
        })
    }

    /// The primitive's source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Self::U8 => "u8",
            Self::U16 => "u16",
            Self::U32 => "u32",
            Self::U64 => "u64",
            Self::U128 => "u128",
            Self::Usize => "usize",
            Self::I8 => "i8",
            Self::I16 => "i16",
            Self::I32 => "i32",
            Self::I64 => "i64",
            Self::I128 => "i128",
            Self::Isize => "isize",
            Self::F32 => "f32",
            Self::F64 => "f64",
        }
    }

    /// Width in bits; `usize`/`isize` are treated as 64-bit (the repro
    /// targets 64-bit hosts; DESIGN.md §13 records the id-space contract).
    fn bits(self) -> u32 {
        match self {
            Self::U8 | Self::I8 => 8,
            Self::U16 | Self::I16 => 16,
            Self::U32 | Self::I32 | Self::F32 => 32,
            Self::U128 | Self::I128 => 128,
            _ => 64,
        }
    }

    fn is_float(self) -> bool {
        matches!(self, Self::F32 | Self::F64)
    }

    fn is_signed(self) -> bool {
        matches!(
            self,
            Self::I8 | Self::I16 | Self::I32 | Self::I64 | Self::I128 | Self::Isize
        )
    }

    /// Mantissa precision of a float target (bits of integer it can hold
    /// exactly): 24 for f32, 53 for f64.
    fn mantissa_bits(self) -> u32 {
        match self {
            Self::F32 => 24,
            Self::F64 => 53,
            _ => 0,
        }
    }

    /// A *narrow* target is one an invisible-source cast is assumed lossy
    /// into: sub-64-bit integers and `f32`. An `as f64` from an unknown
    /// integer source is allowed at the token level (the visible-source
    /// path still flags `u64 as f64`, and clippy covers the rest
    /// semantically).
    fn is_narrow_target(self) -> bool {
        match self {
            Self::F64 => false,
            Self::F32 => true,
            _ => self.bits() < 64,
        }
    }
}

/// One `as <numeric>` cast site in masked code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastSite {
    /// 1-based line of the `as` keyword.
    pub line: usize,
    /// 1-based char columns `[start, end)` spanning `as <ty>`.
    pub span: (usize, usize),
    /// The cast's target type.
    pub target: NumTy,
    /// Source type when syntactically visible (chained cast or suffixed
    /// literal operand); `None` when only the semantic layer could know.
    pub source: Option<NumTy>,
}

/// Whether a `src as dst` conversion is value-preserving for every `src`
/// value.
fn lossless(src: NumTy, dst: NumTy) -> bool {
    match (src.is_float(), dst.is_float()) {
        (true, true) => dst.bits() >= src.bits(),
        (true, false) => false, // float -> int truncates fractions, saturates
        (false, true) => src.bits() <= dst.mantissa_bits(),
        (false, false) => {
            if src.is_signed() == dst.is_signed() {
                dst.bits() >= src.bits()
            } else if src.is_signed() {
                false // signed -> unsigned reinterprets negatives
            } else {
                dst.bits() > src.bits() // unsigned -> signed needs headroom
            }
        }
    }
}

/// Classifies a cast site: `None` means allowed, `Some(message)` is a D5
/// finding (still subject to `allow(cast)` justification by the caller).
pub fn classify(site: &CastSite) -> Option<String> {
    let dst = site.target;
    match site.source {
        Some(src) => {
            if lossless(src, dst) {
                return None;
            }
            let flavor = if src.is_float() && !dst.is_float() {
                "drops the fractional part and saturates"
            } else if !src.is_float() && dst.is_float() {
                return Some(format!(
                    "lossy cast `{} as {}` is inexact above 2^{}; keep integer arithmetic or justify with `// lint: allow(cast) — <reason>`",
                    src.name(),
                    dst.name(),
                    dst.mantissa_bits()
                ));
            } else if src.is_signed() != dst.is_signed() {
                "changes the sign interpretation of negative values"
            } else {
                "truncates high bits"
            };
            Some(format!(
                "lossy cast `{} as {}` {}; use a typed conversion (`billboard::ids`, `player_count`, `try_from`) or justify with `// lint: allow(cast) — <reason>`",
                src.name(),
                dst.name(),
                flavor
            ))
        }
        None => {
            if dst.is_narrow_target() {
                Some(format!(
                    "possibly narrowing cast `as {}` (source type not visible to the token scan); use a typed conversion (`billboard::ids`, `player_count`, `try_from`) or justify with `// lint: allow(cast) — <reason>`",
                    dst.name()
                ))
            } else {
                None
            }
        }
    }
}

/// Scans masked code for `as <numeric>` casts, resolving the source type
/// when it is syntactically visible.
pub fn scan_casts(masked: &str) -> Vec<CastSite> {
    let chars: Vec<char> = masked.chars().collect();
    let starts = line_starts(&chars);
    let n = chars.len();
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i + 1 < n {
        if chars[i] != 'a' || chars[i + 1] != 's' {
            i += 1;
            continue;
        }
        let bounded =
            (i == 0 || !is_ident(chars[i - 1])) && chars.get(i + 2).map_or(true, |&c| !is_ident(c));
        if !bounded {
            i += 1;
            continue;
        }
        // Target type: next identifier word.
        let mut j = i + 2;
        while j < n && chars[j].is_whitespace() {
            j += 1;
        }
        let ty_start = j;
        while j < n && is_ident(chars[j]) {
            j += 1;
        }
        let word: String = chars[ty_start..j].iter().collect();
        let Some(target) = NumTy::parse(&word) else {
            // `use a as b`, `as &str`, `as *const T`, … — not a numeric cast.
            i += 2;
            continue;
        };
        let line = line_of(&starts, i);
        let col = i - starts[line - 1] + 1;
        let end_col = j - starts[line - 1] + 1;
        sites.push(CastSite {
            line,
            span: (col, end_col),
            target,
            source: visible_source(&chars, i),
        });
        i = j;
    }
    sites
}

/// Resolves the operand type of the cast whose `as` keyword starts at
/// `as_idx`, when it is syntactically visible: a chained cast
/// (`… as u64 as usize`), a suffixed literal (`5i64 as u64`), or a
/// parenthesized group whose content is one of those.
fn visible_source(chars: &[char], as_idx: usize) -> Option<NumTy> {
    let mut j = as_idx;
    // Step back over whitespace preceding `as`.
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    match chars[j - 1] {
        c if is_ident(c) => {
            let end = j;
            let mut s = j;
            while s > 0 && is_ident(chars[s - 1]) {
                s -= 1;
            }
            let word: String = chars[s..end].iter().collect();
            if let Some(ty) = NumTy::parse(&word) {
                // `<ty>` directly before `as` is itself a cast target iff the
                // word before it is `as`: a chained cast reveals the type.
                if preceded_by_as(chars, s) {
                    return Some(ty);
                }
                return None;
            }
            suffixed_literal(&word)
        }
        ')' => {
            // Balanced group: `( … ) as ty`. Visible if the group is a
            // suffixed literal (possibly negated) or ends in a chained cast.
            let close = j - 1;
            let mut depth = 1usize;
            let mut k = close;
            while k > 0 {
                k -= 1;
                match chars[k] {
                    ')' => depth += 1,
                    '(' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if depth != 0 {
                return None;
            }
            let inner: String = chars[k + 1..close].iter().collect();
            let inner = inner.trim();
            let body = inner.strip_prefix('-').unwrap_or(inner).trim();
            if body.chars().all(is_ident) {
                if let Some(ty) = suffixed_literal(body) {
                    return Some(ty);
                }
            }
            // Trailing chained cast inside the group: `(x % n as u64) as …`.
            let inner_chars: Vec<char> = inner.chars().collect();
            let mut e = inner_chars.len();
            while e > 0 && is_ident(inner_chars[e - 1]) {
                e -= 1;
            }
            let tail: String = inner_chars[e..].iter().collect();
            if let Some(ty) = NumTy::parse(&tail) {
                if preceded_by_as(&inner_chars, e) {
                    return Some(ty);
                }
            }
            None
        }
        _ => None,
    }
}

/// Whether the word ending just before index `s` (skipping whitespace) is a
/// word-bounded `as`.
fn preceded_by_as(chars: &[char], mut s: usize) -> bool {
    while s > 0 && chars[s - 1].is_whitespace() {
        s -= 1;
    }
    s >= 2 && chars[s - 2] == 'a' && chars[s - 1] == 's' && (s == 2 || !is_ident(chars[s - 3]))
}

/// Parses a numeric literal with an explicit type suffix (`42u64`,
/// `0xFFu32`, `2.5f64`, `9_007u64`), returning the suffix type.
fn suffixed_literal(word: &str) -> Option<NumTy> {
    if !word.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    const SUFFIXES: [&str; 14] = [
        "u128", "i128", "usize", "isize", "u16", "u32", "u64", "i16", "i32", "i64", "f32", "f64",
        "u8", "i8",
    ];
    for suf in SUFFIXES {
        if let Some(prefix) = word.strip_suffix(suf) {
            if prefix.is_empty() {
                continue;
            }
            let radix_body = prefix
                .strip_prefix("0x")
                .or_else(|| prefix.strip_prefix("0o"))
                .or_else(|| prefix.strip_prefix("0b"))
                .unwrap_or(prefix);
            if radix_body
                .chars()
                .all(|c| c.is_ascii_hexdigit() || matches!(c, '_' | '.' | 'e' | 'E' | '+' | '-'))
            {
                return NumTy::parse(suf);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<CastSite> {
        scan_casts(src)
    }

    fn verdicts(src: &str) -> Vec<Option<String>> {
        sites(src).iter().map(classify).collect()
    }

    #[test]
    fn widening_casts_pass() {
        for src in [
            "let a = x as u64;",
            "let b = x as usize;",
            "let c = x as f64;",
            "let d = 7u32 as u64;",
            "let e = 7u32 as usize;",
            "let f = 3u16 as i32;",
            "let g = 1u32 as f64;",
        ] {
            assert_eq!(verdicts(src), vec![None], "src = {src}");
        }
    }

    #[test]
    fn narrow_unknown_source_fires() {
        for (src, ty) in [
            ("let a = x as u32;", "u32"),
            ("let b = len() as i32;", "i32"),
            ("let c = q as f32;", "f32"),
            ("let d = v[0] as u8;", "u8"),
        ] {
            let v = verdicts(src);
            assert_eq!(v.len(), 1, "src = {src}");
            let msg = v[0].as_deref().expect("should fire");
            assert!(msg.contains(ty), "{msg}");
            assert!(msg.contains("possibly narrowing"), "{msg}");
        }
    }

    #[test]
    fn visible_lossy_casts_fire_with_tailored_messages() {
        let v = verdicts("let a = 5u64 as u32;");
        assert!(v[0].as_deref().unwrap().contains("truncates high bits"));
        let v = verdicts("let b = (-5i64) as u64;");
        assert!(v[0].as_deref().unwrap().contains("sign interpretation"));
        let v = verdicts("let c = 9_007_199_254_740_993u64 as f64;");
        assert!(v[0].as_deref().unwrap().contains("inexact above 2^53"));
        let v = verdicts("let d = 1.5f64 as u64;");
        assert!(v[0].as_deref().unwrap().contains("fractional"));
        let v = verdicts("let e = 1.5f64 as f32;");
        assert!(v[0].as_deref().unwrap().contains("as f32"));
    }

    #[test]
    fn chained_cast_reveals_source() {
        // `x as u64 as usize`: second hop sees a visible u64 source (lossless).
        let v = verdicts("let a = x as u64 as usize;");
        assert_eq!(v, vec![None, None]);
        // `x as u64 as u32`: second hop is a visible truncation.
        let v = verdicts("let a = x as u64 as u32;");
        assert!(v[0].is_none());
        assert!(v[1].as_deref().unwrap().contains("`u64 as u32`"));
        // Group with a trailing chained cast: `(x % n as u64) as usize` is a
        // visible u64 -> usize (lossless on 64-bit).
        let v = verdicts("let a = (x % n as u64) as usize;");
        assert_eq!(v, vec![None, None]);
    }

    #[test]
    fn non_numeric_as_is_ignored() {
        for src in [
            "use std::collections::BTreeMap as Map;",
            "let s = x as &str;",
            "let p = q as *const u8;",
            "fn as_u64(&self) -> u64 { self.0 }",
            "let r = v.as_u64() as f64;", // method call: unknown source, wide target
        ] {
            assert!(verdicts(src).iter().all(Option::is_none), "src = {src}");
        }
    }

    #[test]
    fn spans_point_at_the_cast() {
        let s = sites("let id = raw as u32;");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 1);
        assert_eq!(s[0].span, (14, 20)); // `as u32`
    }
}
