//! A lightweight item parser over lexed (stripped + test-masked) sources.
//!
//! distill-lint v1 was purely line-oriented; the v2 rules need *spans*:
//! D7 (hot-path allocation hygiene) must know which lines belong to which
//! function body, and diagnostics want to name the enclosing function. This
//! module walks the masked character stream and recovers every `fn` item —
//! name, signature line, attribute block, and brace-matched body span — by
//! delimiter matching, not a full grammar. Strings and comments are already
//! blanked by the lexer, so brace counting is exact; exotic syntax (braces
//! inside const-generic defaults) would confuse it, which `cargo clippy`
//! backstops at the semantic level like every other token-level rule here.

use crate::is_ident;

/// One parsed `fn` item (free function, inherent/trait method, or a nested
/// function — each `fn` keyword yields its own item, so spans may nest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub header_line: usize,
    /// 1-based lines of the body's `{` and `}` (inclusive). Declarations
    /// without a body (trait method signatures) are not emitted.
    pub body_lines: (usize, usize),
    /// Attribute lines (`#[...]`) captured from the contiguous block above
    /// the header, outermost first.
    pub attrs: Vec<String>,
}

impl FnItem {
    /// Whether `line` (1-based) falls inside this function's body braces.
    pub fn contains_line(&self, line: usize) -> bool {
        self.body_lines.0 <= line && line <= self.body_lines.1
    }
}

/// 0-based char index of each line start in `chars`.
pub(crate) fn line_starts(chars: &[char]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &c) in chars.iter().enumerate() {
        if c == '\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line holding char index `idx`.
pub(crate) fn line_of(starts: &[usize], idx: usize) -> usize {
    starts.partition_point(|&s| s <= idx)
}

/// Parses every `fn` item out of masked code. `src_lines` (the original,
/// unstripped source) is used only to capture the attribute block above each
/// header.
pub fn parse_fns(masked: &str, src_lines: &[&str]) -> Vec<FnItem> {
    let chars: Vec<char> = masked.chars().collect();
    let starts = line_starts(&chars);
    let n = chars.len();
    let mut items = Vec::new();
    let mut i = 0usize;
    while i + 1 < n {
        // Word-bounded `fn` keyword.
        if chars[i] != 'f' || chars[i + 1] != 'n' {
            i += 1;
            continue;
        }
        let bounded = (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + 2).is_some_and(|c| c.is_whitespace());
        if !bounded {
            i += 1;
            continue;
        }
        let header_line = line_of(&starts, i);
        // Function name (skipping whitespace). A non-identifier here means
        // this was a bare `fn` fragment (e.g. an `fn()` pointer type, which
        // has no space), so skip it.
        let mut j = i + 2;
        while j < n && chars[j].is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < n && is_ident(chars[j]) {
            j += 1;
        }
        if j == name_start {
            i += 2;
            continue;
        }
        let name: String = chars[name_start..j].iter().collect();
        // Scan the signature for the body `{` at bracket depth 0; a `;`
        // first means a bodyless declaration. Angle brackets are ignored:
        // generic argument lists contain neither `{` nor `;` in this
        // codebase's (and almost any) real code.
        let mut depth = 0usize;
        let mut body_open = None;
        while j < n {
            match chars[j] {
                '(' | '[' => depth += 1,
                ')' | ']' => depth = depth.saturating_sub(1),
                '{' if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j.max(i + 2);
            continue;
        };
        // Brace-match the body.
        let mut brace = 0usize;
        let mut k = open;
        let close = loop {
            if k >= n {
                break n.saturating_sub(1);
            }
            match chars[k] {
                '{' => brace += 1,
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        break k;
                    }
                }
                _ => {}
            }
            k += 1;
        };
        items.push(FnItem {
            name,
            header_line,
            body_lines: (line_of(&starts, open), line_of(&starts, close)),
            attrs: attrs_above(src_lines, header_line),
        });
        // Keep scanning *inside* the body too: nested fns get their own
        // (narrower) items, and innermost-span attribution picks them up.
        i = open + 1;
    }
    items
}

/// Captures the contiguous `#[...]` attribute lines directly above
/// `header_line` (1-based), outermost first. Comment lines may interleave.
fn attrs_above(src_lines: &[&str], header_line: usize) -> Vec<String> {
    let mut attrs = Vec::new();
    let mut l = header_line;
    while l > 1 {
        l -= 1;
        let raw = src_lines.get(l - 1).map_or("", |s| s.trim_start());
        if raw.starts_with("#[") {
            attrs.push(raw.to_string());
        } else if !(raw.starts_with("//") || raw.starts_with("#!")) {
            break;
        }
    }
    attrs.reverse();
    attrs
}

/// The innermost parsed function whose body contains `line`, if any.
pub fn innermost_containing(items: &[FnItem], line: usize) -> Option<&FnItem> {
    items
        .iter()
        .filter(|f| f.contains_line(line))
        .min_by_key(|f| f.body_lines.1 - f.body_lines.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip_source;

    fn parse(src: &str) -> Vec<FnItem> {
        let stripped = strip_source(src);
        let lines: Vec<&str> = src.lines().collect();
        parse_fns(&stripped.code, &lines)
    }

    #[test]
    fn finds_simple_and_nested_fns() {
        let src =
            "fn outer() {\n    fn inner(x: u32) -> u32 { x }\n    inner(1);\n}\nfn tail() {}\n";
        let fns = parse(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "tail"]);
        let outer = &fns[0];
        assert_eq!(outer.body_lines, (1, 4));
        let inner = &fns[1];
        assert_eq!(inner.body_lines, (2, 2));
        // Innermost attribution: line 2 belongs to `inner`, line 3 to `outer`.
        assert_eq!(innermost_containing(&fns, 2).unwrap().name, "inner");
        assert_eq!(innermost_containing(&fns, 3).unwrap().name, "outer");
    }

    #[test]
    fn skips_bodyless_declarations_and_fn_pointer_types() {
        let src = "trait T {\n    fn decl(&self);\n    fn with_default(&self) -> u32 { 1 }\n}\nfn takes(f: fn(u32) -> u32) -> u32 { f(2) }\n";
        let fns = parse(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default", "takes"]);
    }

    #[test]
    fn signature_braces_after_paren_depth() {
        let src = "fn f(xs: &[u32; 3]) -> bool {\n    xs.iter().any(|&x| x > 0)\n}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].body_lines, (1, 3));
    }

    #[test]
    fn captures_attribute_block() {
        let src = "#[inline]\n// a comment between\n#[must_use]\npub fn hot() -> u32 { 3 }\n";
        let fns = parse(src);
        assert_eq!(
            fns[0].attrs,
            vec!["#[inline]".to_string(), "#[must_use]".to_string()]
        );
        assert_eq!(fns[0].header_line, 4);
    }

    #[test]
    fn strings_cannot_confuse_brace_matching() {
        // The lexer blanks the unbalanced brace inside the string before the
        // parser ever sees it.
        let src = "fn g() -> &'static str {\n    \"unbalanced { brace\"\n}\nfn h() {}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].body_lines, (1, 3));
    }
}
