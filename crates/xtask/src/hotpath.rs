//! D7 — hot-path allocation hygiene.
//!
//! The engines' steady state is zero-allocation, gated *dynamically* by the
//! alloc-counting test at n=10^5 (DESIGN.md §13). That gate only catches
//! regressions on the paths the test happens to exercise; this rule is the
//! static backstop. A function annotated with a `// lint: hot` comment in
//! the block above its header must not contain allocating constructs:
//! `Vec::new`, `Box::new`, `format!`, `.collect()`, `.clone()`, `.to_vec()`,
//! and friends. Cold diagnostic branches inside a hot function justify the
//! individual line with `// lint: allow(alloc) — <reason>`.
//!
//! Span-awareness earns its keep here: `debug_assert!`/`debug_assert_eq!`/
//! `debug_assert_ne!` invocations are brace/paren-matched and blanked before
//! the scan, because they compile out of release builds — the tally-scan
//! oracle inside `window_tally_into` may allocate freely without tripping
//! the rule.

use crate::items::FnItem;
use crate::{is_ident, Anchor};

/// Allocating constructs forbidden inside `// lint: hot` functions.
/// `Anchor::Path` tokens match qualified constructor calls; `Anchor::Method`
/// tokens match `.name(` / `.name::<…>(`; `Anchor::Macro` tokens match
/// `name!`.
pub const ALLOC_TOKENS: &[(&str, Anchor)] = &[
    ("Vec::new", Anchor::Path),
    ("Vec::with_capacity", Anchor::Path),
    ("VecDeque::new", Anchor::Path),
    ("String::new", Anchor::Path),
    ("String::from", Anchor::Path),
    ("String::with_capacity", Anchor::Path),
    ("Box::new", Anchor::Path),
    ("vec", Anchor::Macro),
    ("format", Anchor::Macro),
    ("to_vec", Anchor::Method),
    ("to_owned", Anchor::Method),
    ("to_string", Anchor::Method),
    ("collect", Anchor::Method),
    ("clone", Anchor::Method),
    ("with_capacity", Anchor::Method),
];

/// The annotation marker that opts a function into the D7 scan.
pub const HOT_MARKER: &str = "lint: hot";

/// Whether `item` carries a `// lint: hot` annotation: a comment containing
/// the marker on the header line itself or in the contiguous
/// comment/attribute block above it. `comments` is the
/// `(1-based line, text)` list from [`crate::Stripped`].
pub fn is_hot(item: &FnItem, src_lines: &[&str], comments: &[(usize, String)]) -> bool {
    let on = |l: usize| {
        comments
            .iter()
            .filter(|(cl, _)| *cl == l)
            .any(|(_, text)| text.contains(HOT_MARKER))
    };
    if on(item.header_line) {
        return true;
    }
    let mut l = item.header_line;
    while l > 1 {
        l -= 1;
        let raw = src_lines.get(l - 1).map_or("", |s| s.trim_start());
        let is_annotation = raw.starts_with("//") || raw.starts_with("#[") || raw.starts_with("#!");
        if !is_annotation {
            return false;
        }
        if on(l) {
            return true;
        }
    }
    false
}

/// Blanks `debug_assert!` / `debug_assert_eq!` / `debug_assert_ne!`
/// invocation bodies (delimiter-matched, newline-preserving) so their
/// oracle expressions are exempt from the allocation scan.
pub fn mask_debug_asserts(code: &str) -> String {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    let mut out: Vec<char> = chars.clone();
    let mut i = 0usize;
    while i < n {
        if chars[i] != 'd' {
            i += 1;
            continue;
        }
        let rest: String = chars[i..n.min(i + 16)].iter().collect();
        let name_len = if rest.starts_with("debug_assert_eq") || rest.starts_with("debug_assert_ne")
        {
            15
        } else if rest.starts_with("debug_assert") {
            12
        } else {
            i += 1;
            continue;
        };
        let bounded = (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + name_len).is_some_and(|&c| !is_ident(c));
        if !bounded {
            i += name_len;
            continue;
        }
        // Require the macro bang, then blank through the matched delimiter.
        let mut j = i + name_len;
        while j < n && chars[j].is_whitespace() {
            j += 1;
        }
        if chars.get(j) != Some(&'!') {
            i += name_len;
            continue;
        }
        j += 1;
        while j < n && chars[j].is_whitespace() {
            j += 1;
        }
        let (open, close) = match chars.get(j) {
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            Some('{') => ('{', '}'),
            _ => {
                i = j;
                continue;
            }
        };
        let mut depth = 0usize;
        let mut k = j;
        while k < n {
            let c = chars[k];
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if c != '\n' {
                out[k] = ' ';
            }
            k += 1;
        }
        if k < n {
            out[k] = ' ';
        }
        i = k.saturating_add(1);
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_fns;
    use crate::strip_source;

    #[test]
    fn masks_debug_assert_family_only() {
        let src = "debug_assert_eq!(a.collect::<Vec<_>>(), b);\nassert_eq!(c, d);\nlet v: Vec<u32> = it.collect();\n";
        let masked = mask_debug_asserts(src);
        assert!(!masked.contains("a.collect"));
        assert!(masked.contains("assert_eq!(c, d);"));
        assert!(masked.contains("it.collect()"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn multiline_debug_assert_is_blanked_preserving_lines() {
        let src = "debug_assert_eq!(\n    xs.iter().copied().collect::<Vec<_>>(),\n    expected,\n);\nxs.len();\n";
        let masked = mask_debug_asserts(src);
        assert!(!masked.contains("collect"));
        assert!(masked.contains("xs.len();"));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn hot_marker_detected_above_attributes() {
        let src = "// lint: hot\n#[inline]\npub fn step() {}\n\npub fn cold() {}\n";
        let stripped = strip_source(src);
        let lines: Vec<&str> = src.lines().collect();
        let fns = parse_fns(&stripped.code, &lines);
        assert!(is_hot(&fns[0], &lines, &stripped.comments));
        assert!(!is_hot(&fns[1], &lines, &stripped.comments));
    }

    #[test]
    fn hot_marker_on_header_line_counts() {
        let src = "pub fn tally() { // lint: hot\n}\n";
        let stripped = strip_source(src);
        let lines: Vec<&str> = src.lines().collect();
        let fns = parse_fns(&stripped.code, &lines);
        assert!(is_hot(&fns[0], &lines, &stripped.comments));
    }

    #[test]
    fn hot_marker_does_not_leak_past_code_lines() {
        let src = "// lint: hot\npub fn hot_one() {}\n\nlet x = 1;\npub fn unrelated() {}\n";
        let stripped = strip_source(src);
        let lines: Vec<&str> = src.lines().collect();
        let fns = parse_fns(&stripped.code, &lines);
        assert!(!is_hot(&fns[1], &lines, &stripped.comments));
    }
}
