//! The two object models of §2.2.

use std::fmt;

/// How "goodness" of an object is defined and whether a prober can detect it
/// (§2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectModel {
    /// **Local testing**: a player can always determine whether an object is
    /// good after probing it — e.g. an object is good iff its value exceeds a
    /// known threshold. Algorithm DISTILL (§4) works in this model.
    LocalTesting {
        /// An object is good iff `value >= threshold`.
        threshold: f64,
    },
    /// **No local testing**: goodness is defined only relatively — an object
    /// is good iff it is among the top `⌈βm⌉` valued objects. Probers learn
    /// values but cannot conclude goodness. §5.3's variant works here.
    TopBeta {
        /// The fraction of objects deemed good, `0 < beta ≤ 1`.
        beta: f64,
    },
}

impl ObjectModel {
    /// `true` iff a single probe reveals goodness.
    pub fn has_local_testing(&self) -> bool {
        matches!(self, ObjectModel::LocalTesting { .. })
    }
}

impl fmt::Display for ObjectModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectModel::LocalTesting { threshold } => {
                write!(f, "local-testing(threshold={threshold})")
            }
            ObjectModel::TopBeta { beta } => write!(f, "top-beta(beta={beta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_testing_flag() {
        assert!(ObjectModel::LocalTesting { threshold: 0.5 }.has_local_testing());
        assert!(!ObjectModel::TopBeta { beta: 0.1 }.has_local_testing());
    }

    #[test]
    fn display() {
        let m = ObjectModel::LocalTesting { threshold: 0.5 };
        assert!(m.to_string().contains("0.5"));
        let m = ObjectModel::TopBeta { beta: 0.25 };
        assert!(m.to_string().contains("0.25"));
    }
}
