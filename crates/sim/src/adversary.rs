//! The Byzantine adversary interface.

use crate::cohort::PhaseInfo;
use crate::world::World;
use distill_billboard::{BoardView, ObjectId, PlayerId, ReportKind, Round};
use rand::rngs::SmallRng;
use std::fmt;

/// How much of the execution the adversary observes before posting each
/// round (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InfoModel {
    /// The adversary must fix its behaviour independently of the honest
    /// players' coin flips. Mechanically it receives the same view as
    /// `Adaptive`; strategies declared oblivious commit to using only the
    /// round number and static instance structure. (True obliviousness is a
    /// property of the strategy, not enforceable by the transport.)
    Oblivious,
    /// The paper's **adaptive** adversary: before posting in round `r` it
    /// sees the entire billboard up to and including round `r − 1` — i.e.
    /// the results of all *past* coin flips.
    #[default]
    Adaptive,
    /// Strictly stronger than the paper's model: additionally sees the honest
    /// players' round-`r` posts before choosing its own. Used for stress
    /// tests; every upper-bound experiment also passes under it.
    StronglyAdaptive,
}

impl fmt::Display for InfoModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfoModel::Oblivious => f.write_str("oblivious"),
            InfoModel::Adaptive => f.write_str("adaptive"),
            InfoModel::StronglyAdaptive => f.write_str("strongly-adaptive"),
        }
    }
}

/// A message a dishonest player asks the transport to post this round.
///
/// The `author` must be one of the adversary's players — the billboard's
/// author tags are reliable (§2.1), so the engine rejects forgeries (and
/// counts them in [`SimResult::forged_rejected`]).
///
/// [`SimResult::forged_rejected`]: crate::SimResult
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DishonestPost {
    /// The posting (dishonest) player.
    pub author: PlayerId,
    /// The object the report is about.
    pub object: ObjectId,
    /// The claimed value — anything the adversary likes.
    pub value: f64,
    /// Claimed polarity.
    pub kind: ReportKind,
}

impl DishonestPost {
    /// Convenience: a positive ("this object is good") report claiming value 1.
    pub fn vote(author: PlayerId, object: ObjectId) -> Self {
        DishonestPost {
            author,
            object,
            value: 1.0,
            kind: ReportKind::Positive,
        }
    }

    /// Convenience: a negative ("this object is bad") report claiming value 0.
    pub fn slander(author: PlayerId, object: ObjectId) -> Self {
        DishonestPost {
            author,
            object,
            value: 0.0,
            kind: ReportKind::Negative,
        }
    }
}

/// Everything the adversary sees when deciding its round-`r` posts.
#[derive(Debug)]
pub struct AdversaryCtx<'a, 'b> {
    /// The current round.
    pub round: Round,
    /// The billboard view (scope depends on the [`InfoModel`]).
    pub view: &'a BoardView<'b>,
    /// The ids of the players under adversary control.
    pub dishonest: &'a [PlayerId],
    /// The honest protocol's public phase state.
    pub phase: &'a PhaseInfo,
    /// Ground truth — the Byzantine adversary knows everything.
    pub world: &'a World,
    /// The information model in force.
    pub info: InfoModel,
    /// The adversary's private coin flips.
    pub rng: &'a mut SmallRng,
}

impl AdversaryCtx<'_, '_> {
    /// Number of players `n`.
    pub fn n(&self) -> u32 {
        self.view.n_players()
    }

    /// Number of objects `m`.
    pub fn m(&self) -> u32 {
        self.view.n_objects()
    }

    /// `true` iff `player` has not yet used up its reader-counted votes.
    pub fn has_vote_budget(&self, player: PlayerId) -> bool {
        self.view.votes_of(player).len() < self.view.tracker().policy().votes_per_player
    }

    /// The dishonest players that still have vote budget, in id order.
    pub fn fresh_voters(&self) -> Vec<PlayerId> {
        self.dishonest
            .iter()
            .copied()
            .filter(|&p| self.has_vote_budget(p))
            .collect()
    }
}

/// A Byzantine strategy controlling all dishonest players.
///
/// Called exactly once per round (after the honest players in the
/// strongly-adaptive model, before their posts land otherwise). The returned
/// posts are appended to the billboard verbatim, except that posts with an
/// `author` outside the dishonest set are rejected by the transport.
pub trait Adversary {
    /// Produces this round's dishonest posts.
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost>;

    /// A short stable name for reporting.
    fn name(&self) -> &'static str;
}

impl fmt::Debug for dyn Adversary + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Adversary({})", self.name())
    }
}

/// The adversary that never posts anything. Dishonest players stay silent;
/// the honest players still don't know *who* is honest.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAdversary;

impl Adversary for NullAdversary {
    fn on_round(&mut self, _ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dishonest_post_constructors() {
        let v = DishonestPost::vote(PlayerId(3), ObjectId(1));
        assert_eq!(v.kind, ReportKind::Positive);
        assert_eq!(v.value, 1.0);
        let s = DishonestPost::slander(PlayerId(3), ObjectId(1));
        assert_eq!(s.kind, ReportKind::Negative);
        assert_eq!(s.value, 0.0);
    }

    #[test]
    fn info_model_display() {
        assert_eq!(InfoModel::Oblivious.to_string(), "oblivious");
        assert_eq!(InfoModel::Adaptive.to_string(), "adaptive");
        assert_eq!(InfoModel::StronglyAdaptive.to_string(), "strongly-adaptive");
        assert_eq!(InfoModel::default(), InfoModel::Adaptive);
    }
}
