//! The **asynchronous** execution model of the paper's prior work.
//!
//! §1.1: "We considered an asynchronous model, where a basic step is a
//! single player reading the billboard, probing an object, and updating the
//! billboard; the player schedule is assumed to be under the control of the
//! adversary."
//!
//! §1.2 then argues this model cannot support individual-cost bounds: "A
//! schedule that runs a single player by itself forces that player to find
//! the good object on its own without any assistance from any other player."
//! This module makes both halves measurable: an [`AsyncEngine`] executes
//! single-player steps under a pluggable (adversarial) [`Schedule`], with
//! per-step policies for the honest players. Experiment E16 uses it to
//! reproduce the total-cost bound of \[1\] quoted in §1.1
//! (`O(1/β + n·log n)`) and the §1.2 isolation argument.

use crate::adversary::{Adversary, AdversaryCtx, InfoModel};
use crate::cohort::PhaseInfo;
use crate::config::ServicePlan;
use crate::error::SimError;
use crate::faults::{FaultCounters, FaultPlan};
use crate::rng::{stream_rng, Stream};
use crate::world::World;
use distill_billboard::{
    BatchStager, Billboard, BitSet, BoardView, ObjectId, PlayerId, Post, ReportKind, Round, Seq,
    StagedBatch, VotePolicy, VoteTracker,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// Chooses which active honest player takes each step — the adversarially
/// controlled schedule of the asynchronous model.
pub trait Schedule {
    /// Picks the player for step `step` among the still-active honest
    /// players.
    ///
    /// Contract (upheld by [`AsyncEngine`], relied upon by implementations):
    /// `active` is **non-empty** — the engine halts before scheduling an
    /// empty population — and **ascending by player id**, so membership
    /// checks may binary-search.
    fn next(&mut self, step: u64, active: &[PlayerId], rng: &mut SmallRng) -> PlayerId;

    /// A short stable name for reporting.
    fn name(&self) -> &'static str;
}

impl std::fmt::Debug for dyn Schedule + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Schedule({})", self.name())
    }
}

/// Fair rotation over the active players — the "synchronous-like" schedule
/// under which the paper evaluates the prior algorithm (§1.2 "say, round
/// robin").
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl Schedule for RoundRobin {
    fn next(&mut self, _step: u64, active: &[PlayerId], _rng: &mut SmallRng) -> PlayerId {
        // Invariant (documented on the trait): `active` is non-empty — the
        // engine stops before scheduling an empty population.
        debug_assert!(
            !active.is_empty(),
            "RoundRobin scheduled with no active players"
        );
        // Wrap explicitly *before* indexing: `active` may have shrunk since
        // the last call, which previously made the `cursor % len` position
        // drift arbitrarily (and carried a dead `.max(1)` guard — the index
        // on the line above it would already have panicked on empty input).
        if self.cursor >= active.len() {
            self.cursor = 0;
        }
        let p = active[self.cursor];
        self.cursor += 1;
        p
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// A uniformly random active player each step.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSchedule;

impl Schedule for RandomSchedule {
    fn next(&mut self, _step: u64, active: &[PlayerId], rng: &mut SmallRng) -> PlayerId {
        active[rng.gen_range(0..active.len())]
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// The §1.2 adversarial schedule: run the victim **by itself** until it is
/// satisfied, then fall back to round robin for everyone else. The victim
/// gets zero assistance — its individual cost is forced to `Θ(1/β)`.
#[derive(Debug, Clone, Copy)]
pub struct Isolate {
    victim: PlayerId,
    fallback: RoundRobin,
}

impl Isolate {
    /// Isolates `victim`.
    pub fn new(victim: PlayerId) -> Self {
        Isolate {
            victim,
            fallback: RoundRobin::default(),
        }
    }
}

impl Schedule for Isolate {
    fn next(&mut self, step: u64, active: &[PlayerId], rng: &mut SmallRng) -> PlayerId {
        // `active` is ascending (trait contract), so victim membership is a
        // binary search, not a linear scan per step.
        if active.binary_search(&self.victim).is_ok() {
            self.victim
        } else {
            self.fallback.next(step, active, rng)
        }
    }

    fn name(&self) -> &'static str {
        "isolate"
    }
}

/// The complementary adversarial schedule: starve the victim until every
/// other player is done, then run only the victim. The victim arrives to a
/// billboard full of votes — with a collaboration-aware policy it finishes
/// almost immediately, which is why *starving* is a much weaker attack than
/// *isolating* (timestamped billboards let latecomers catch up, §1.2).
#[derive(Debug, Clone)]
pub struct Starve {
    victim: PlayerId,
    fallback: RoundRobin,
    /// Scratch: the active set minus the victim, rebuilt in place each step
    /// so starving allocates nothing after the first call.
    others: Vec<PlayerId>,
}

impl Starve {
    /// Starves `victim`.
    pub fn new(victim: PlayerId) -> Self {
        Starve {
            victim,
            fallback: RoundRobin::default(),
            others: Vec::new(),
        }
    }
}

impl Schedule for Starve {
    fn next(&mut self, step: u64, active: &[PlayerId], rng: &mut SmallRng) -> PlayerId {
        self.others.clear();
        self.others
            .extend(active.iter().copied().filter(|&p| p != self.victim));
        if self.others.is_empty() {
            self.victim
        } else {
            self.fallback.next(step, &self.others, rng)
        }
    }

    fn name(&self) -> &'static str {
        "starve"
    }
}

/// What one honest player does on its step: read the billboard, pick one
/// object to probe.
pub trait StepPolicy {
    /// Chooses the object to probe.
    fn probe(&mut self, player: PlayerId, view: &BoardView<'_>, rng: &mut SmallRng) -> ObjectId;

    /// A short stable name for reporting.
    fn name(&self) -> &'static str;
}

impl std::fmt::Debug for dyn StepPolicy + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StepPolicy({})", self.name())
    }
}

/// The asynchronous rendition of the balance rule of \[1\]: flip a fair coin —
/// probe a uniformly random object, or follow the vote of a uniformly random
/// player (falling back to a random object if that player has none).
#[derive(Debug, Clone, Copy)]
pub struct BalanceStep {
    explore: f64,
}

impl BalanceStep {
    /// The fair-coin rule.
    pub fn new() -> Self {
        BalanceStep { explore: 0.5 }
    }
}

impl Default for BalanceStep {
    fn default() -> Self {
        BalanceStep::new()
    }
}

impl StepPolicy for BalanceStep {
    fn probe(&mut self, _player: PlayerId, view: &BoardView<'_>, rng: &mut SmallRng) -> ObjectId {
        let m = view.n_objects();
        if rng.gen::<f64>() < self.explore {
            ObjectId(rng.gen_range(0..m))
        } else {
            let j = PlayerId(rng.gen_range(0..view.n_players()));
            view.vote_of(j)
                .unwrap_or_else(|| ObjectId(rng.gen_range(0..m)))
        }
    }

    fn name(&self) -> &'static str {
        "balance"
    }
}

/// Pure random probing (the §3 trivial algorithm, asynchronously).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomStep;

impl StepPolicy for RandomStep {
    fn probe(&mut self, _player: PlayerId, view: &BoardView<'_>, rng: &mut SmallRng) -> ObjectId {
        ObjectId(rng.gen_range(0..view.n_objects()))
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Per-player outcome of an asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncPlayerOutcome {
    /// Probes (= scheduled steps while active).
    pub probes: u64,
    /// Total cost paid.
    pub cost_paid: f64,
    /// The global step at which the player got satisfied.
    pub satisfied_step: Option<u64>,
}

/// Transport statistics of a service-mode run (see
/// [`AsyncEngine::with_service`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceCounters {
    /// Batches flushed out of the staging buffers.
    pub batches_submitted: u64,
    /// Batches released by the reorder buffer onto the board.
    pub batches_applied: u64,
    /// Posts routed through the service transport.
    pub posts_submitted: u64,
    /// Batches that arrived ahead of a sequence gap and had to wait.
    pub held_out_of_order: u64,
    /// High-water mark of batches parked in the reorder buffer.
    pub max_pending: usize,
    /// Partial batches force-flushed by the end-of-run drain.
    pub shutdown_flushes: u64,
}

/// A post waiting in a producer's staging buffer (no seq/round yet — both
/// are stamped at flush time, so submission order is sequence order).
#[derive(Debug, Clone, Copy)]
struct PendingDraft {
    author: PlayerId,
    object: ObjectId,
    value: f64,
    kind: ReportKind,
}

/// The in-simulation service transport: sharded staging buffers, delayed
/// in-flight batches, and the reorder buffer that restores sequence order.
#[derive(Debug)]
struct ServiceState {
    plan: ServicePlan,
    /// One staging buffer per simulated producer, sharded by author id.
    buffers: Vec<Vec<PendingDraft>>,
    /// Next sequence number to allocate at flush time.
    next_seq: u64,
    stager: BatchStager,
    /// Submitted batches awaiting delivery: `(deliver_at_step, batch)`.
    in_flight: Vec<(u64, StagedBatch)>,
    /// Reused drain buffer for due deliveries.
    due_scratch: Vec<StagedBatch>,
    batches_submitted: u64,
    posts_submitted: u64,
    shutdown_flushes: u64,
}

/// Outcome of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncResult {
    /// Total steps executed.
    pub steps: u64,
    /// `true` iff every honest player found a good object.
    pub all_satisfied: bool,
    /// Per honest player.
    pub players: Vec<AsyncPlayerOutcome>,
    /// Fault-injection event counts (all zero in fault-free runs).
    pub faults: FaultCounters,
    /// Service-transport statistics; `None` for direct-mode runs.
    pub service: Option<ServiceCounters>,
}

impl AsyncResult {
    /// Total probes by honest players — the *total cost* measure of \[1\].
    pub fn total_probes(&self) -> u64 {
        self.players.iter().map(|p| p.probes).sum()
    }

    /// Probes of one player (the individual cost under this schedule).
    pub fn probes_of(&self, player: PlayerId) -> u64 {
        self.players[player.index()].probes
    }
}

/// The asynchronous engine: repeatedly schedules a single honest player for
/// a read-probe-post step; the adversary may post after every step.
pub struct AsyncEngine<'w> {
    world: &'w World,
    n: u32,
    n_honest: u32,
    board: Billboard,
    tracker: VoteTracker,
    /// Satisfaction flags, one bit per honest player (packed `u64` words,
    /// matching the synchronous engine's struct-of-arrays layout).
    satisfied: BitSet,
    /// Unsatisfied honest players, ascending — maintained incrementally on
    /// satisfaction instead of being re-collected every step (the dominant
    /// cost of the old per-step `active()` scan at large `n`).
    active: Vec<PlayerId>,
    outcomes: Vec<AsyncPlayerOutcome>,
    player_rngs: Vec<SmallRng>,
    sched_rng: SmallRng,
    adv_rng: SmallRng,
    policy: Box<dyn StepPolicy>,
    schedule: Box<dyn Schedule>,
    adversary: Box<dyn Adversary>,
    dishonest: Vec<PlayerId>,
    step: u64,
    max_steps: u64,
    faults: FaultPlan,
    faults_rng: SmallRng,
    /// Predetermined crash events `(step, player)`, sorted ascending; the
    /// cursor marks the first event that has not fired yet. Each event fires
    /// exactly once, so a recovered player does not crash again and churn
    /// costs O(crashed + due) per step instead of an O(n) schedule rescan.
    crash_events: Vec<(u64, u32)>,
    crash_cursor: usize,
    crashed: BitSet,
    /// Currently-crashed players, ascending — the recovery-coin draw order.
    crashed_list: Vec<u32>,
    /// Reused output buffer for rebuilding `crashed_list` during churn.
    churn_scratch: Vec<u32>,
    fault_counters: FaultCounters,
    /// Stale-read tracker, fed via `ingest_until` at the lag cutoff; present
    /// only when the plan sets `view_lag > 0`.
    lagged_tracker: Option<VoteTracker>,
    /// Service-transport state; `None` in direct mode.
    service: Option<ServiceState>,
    /// Delivery-delay draws for service mode. Built unconditionally (like
    /// `faults_rng`) but consumed only by plans with a positive
    /// `max_delivery_delay`, so delay-free runs stay bit-identical to
    /// direct mode.
    service_rng: SmallRng,
}

impl std::fmt::Debug for AsyncEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncEngine")
            .field("step", &self.step)
            .field("policy", &self.policy.name())
            .field("schedule", &self.schedule.name())
            .finish()
    }
}

impl<'w> AsyncEngine<'w> {
    /// Builds an asynchronous execution.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for empty populations or a
    /// non-local-testing world (the asynchronous model of \[1\] assumes
    /// players recognize good objects).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: u32,
        n_honest: u32,
        seed: u64,
        max_steps: u64,
        world: &'w World,
        policy: Box<dyn StepPolicy>,
        schedule: Box<dyn Schedule>,
        adversary: Box<dyn Adversary>,
    ) -> Result<Self, SimError> {
        if n == 0 || n_honest == 0 || n_honest > n {
            return Err(SimError::InvalidConfig(format!(
                "need 1 ≤ n_honest ({n_honest}) ≤ n ({n})"
            )));
        }
        if !world.model().has_local_testing() {
            return Err(SimError::InvalidConfig(
                "the asynchronous model requires local testing".into(),
            ));
        }
        Ok(AsyncEngine {
            world,
            n,
            n_honest,
            board: Billboard::new(n, world.m()),
            tracker: VoteTracker::new(n, world.m(), VotePolicy::single_vote()),
            satisfied: BitSet::new(n_honest as usize),
            active: (0..n_honest).map(PlayerId).collect(),
            outcomes: vec![
                AsyncPlayerOutcome {
                    probes: 0,
                    cost_paid: 0.0,
                    satisfied_step: None,
                };
                n_honest as usize
            ],
            player_rngs: (0..n_honest)
                .map(|p| stream_rng(seed, Stream::Player(p)))
                .collect(),
            sched_rng: stream_rng(seed, Stream::Aux(1)),
            adv_rng: stream_rng(seed, Stream::Adversary),
            policy,
            schedule,
            adversary,
            dishonest: (n_honest..n).map(PlayerId).collect(),
            step: 0,
            max_steps,
            faults: FaultPlan::default(),
            faults_rng: stream_rng(seed, Stream::Faults),
            crash_events: Vec::new(),
            crash_cursor: 0,
            crashed: BitSet::new(n_honest as usize),
            crashed_list: Vec::new(),
            churn_scratch: Vec::new(),
            fault_counters: FaultCounters::default(),
            lagged_tracker: None,
            service: None,
            service_rng: stream_rng(seed, Stream::Aux(2)),
        })
    }

    /// Installs a fault plan (asynchronous semantics: `crash_window` and
    /// `view_lag` are measured in *steps* rather than rounds; drop and
    /// recovery probabilities are per step).
    ///
    /// Crash schedules are drawn here from the dedicated fault stream, so an
    /// engine built without `with_faults` — or with a no-op plan — consumes
    /// nothing from it and executes bit-identically to the pre-fault engine.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] when the plan's probabilities are
    /// out of range.
    pub fn with_faults(mut self, plan: FaultPlan) -> Result<Self, SimError> {
        plan.validate()
            .map_err(|msg| SimError::InvalidConfig(format!("fault plan: {msg}")))?;
        self.faults = plan;
        self.crash_events.clear();
        self.crash_cursor = 0;
        if plan.crash_rate > 0.0 {
            // One coin per player in ascending order (plus a step draw for
            // crashers) — the same draw sequence as the per-slot schedule this
            // event list replaces.
            for p in 0..self.n_honest {
                if self.faults_rng.gen::<f64>() < plan.crash_rate {
                    let at = self.faults_rng.gen_range(0..plan.crash_window);
                    self.crash_events.push((at, p));
                }
            }
            self.crash_events.sort_unstable();
        }
        self.lagged_tracker = (plan.view_lag > 0)
            .then(|| VoteTracker::new(self.n, self.world.m(), VotePolicy::single_vote()));
        Ok(self)
    }

    /// Routes all posts (honest and adversarial) through the service
    /// transport: sharded staging buffers, explicit-sequence batch flushes,
    /// adversarially delayed delivery, and a reorder buffer that restores
    /// sequence order before anything reaches the board. The degenerate
    /// plan ([`ServicePlan::is_passthrough`]) is bit-identical to direct
    /// mode; delay draws come from the dedicated `Stream::Aux(2)` stream,
    /// so delay-free plans consume nothing from it.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] when the plan is invalid.
    pub fn with_service(mut self, plan: ServicePlan) -> Result<Self, SimError> {
        plan.validate()
            .map_err(|msg| SimError::InvalidConfig(format!("service plan: {msg}")))?;
        let start = Seq(self.board.len() as u64);
        self.service = Some(ServiceState {
            buffers: vec![Vec::new(); plan.producers as usize],
            next_seq: start.0,
            stager: BatchStager::starting_at(start),
            in_flight: Vec::new(),
            due_scratch: Vec::new(),
            batches_submitted: 0,
            posts_submitted: 0,
            shutdown_flushes: 0,
            plan,
        });
        Ok(self)
    }

    /// One post enters the system. Direct mode appends to the board
    /// immediately; service mode stages the draft in its author's shard and
    /// flushes when the shard buffer is full. Returns whether the board
    /// changed (direct appends always do; service submissions only via a
    /// synchronous flush-and-deliver).
    fn submit_post(
        &mut self,
        round: Round,
        author: PlayerId,
        object: ObjectId,
        value: f64,
        kind: ReportKind,
    ) -> Result<bool, SimError> {
        let Some(svc) = self.service.as_mut() else {
            self.board.append(round, author, object, value, kind)?;
            return Ok(true);
        };
        let shard = author.index() % svc.buffers.len();
        svc.buffers[shard].push(PendingDraft {
            author,
            object,
            value,
            kind,
        });
        if svc.buffers[shard].len() >= svc.plan.batch_posts {
            self.flush_shard(shard)
        } else {
            Ok(false)
        }
    }

    /// Flushes one shard's staged drafts as a batch: sequence numbers are
    /// allocated and rounds stamped **now** (submission time), so the
    /// merged log's seq order is submission order and rounds stay monotone
    /// no matter how delivery scrambles. Delivery is immediate when the
    /// plan's delay is zero, otherwise the batch goes in flight until a
    /// step drawn from `[step, step + delay]`.
    fn flush_shard(&mut self, shard: usize) -> Result<bool, SimError> {
        let step = self.step;
        let Some(svc) = self.service.as_mut() else {
            return Ok(false);
        };
        if svc.buffers[shard].is_empty() {
            return Ok(false);
        }
        let round = Round(step);
        let first = svc.next_seq;
        let drafts = &mut svc.buffers[shard];
        let mut posts = Vec::with_capacity(drafts.len());
        for (i, d) in drafts.drain(..).enumerate() {
            posts.push(Post {
                seq: Seq(first + i as u64),
                round,
                author: d.author,
                object: d.object,
                value: d.value,
                kind: d.kind,
            });
        }
        svc.next_seq = first + posts.len() as u64;
        svc.batches_submitted += 1;
        svc.posts_submitted += posts.len() as u64;
        let producer = u32::try_from(shard).unwrap_or(u32::MAX);
        let batch = StagedBatch::new(producer, posts)?;
        let delay = if svc.plan.max_delivery_delay > 0 {
            self.service_rng.gen_range(0..=svc.plan.max_delivery_delay)
        } else {
            0
        };
        if delay == 0 {
            svc.stager.stage(batch)?;
            self.service_apply_ready()
        } else {
            svc.in_flight.push((step.saturating_add(delay), batch));
            Ok(false)
        }
    }

    /// Drains every batch the reorder buffer can release in sequence order
    /// onto the board, then ingests once. Returns whether anything landed.
    fn service_apply_ready(&mut self) -> Result<bool, SimError> {
        let mut applied = false;
        while let Some(batch) = self.service.as_mut().and_then(|svc| svc.stager.pop_ready()) {
            self.board.ingest_batch(batch.posts())?;
            applied = true;
        }
        if applied {
            self.tracker.ingest(&self.board);
        }
        Ok(applied)
    }

    /// Delivers every in-flight batch whose delay has elapsed, in flight
    /// order, then lets the reorder buffer release what became contiguous.
    fn service_deliver_due(&mut self) -> Result<(), SimError> {
        let step = self.step;
        let Some(svc) = self.service.as_mut() else {
            return Ok(());
        };
        if svc.in_flight.is_empty() {
            return Ok(());
        }
        let mut due = std::mem::take(&mut svc.due_scratch);
        due.clear();
        let mut i = 0;
        while i < svc.in_flight.len() {
            if svc.in_flight[i].0 <= step {
                due.push(svc.in_flight.remove(i).1);
            } else {
                i += 1;
            }
        }
        let delivered = !due.is_empty();
        for batch in due.drain(..) {
            svc.stager.stage(batch)?;
        }
        svc.due_scratch = due;
        if delivered {
            self.service_apply_ready()?;
        }
        Ok(())
    }

    /// End-of-run drain: flushes every shard's residue (in shard order),
    /// delivers everything still in flight regardless of delay, and applies
    /// it all, so the final board contains every submitted post.
    fn service_shutdown(&mut self) -> Result<(), SimError> {
        let shards = self.service.as_ref().map_or(0, |svc| svc.buffers.len());
        let mut flushes = 0u64;
        for shard in 0..shards {
            let pending = self
                .service
                .as_ref()
                .is_some_and(|svc| !svc.buffers[shard].is_empty());
            if pending {
                self.flush_shard(shard)?;
                flushes += 1;
            }
        }
        if let Some(svc) = self.service.as_mut() {
            svc.shutdown_flushes = flushes;
            let mut due = std::mem::take(&mut svc.due_scratch);
            due.clear();
            due.extend(svc.in_flight.drain(..).map(|(_, batch)| batch));
            for batch in due.drain(..) {
                svc.stager.stage(batch)?;
            }
            svc.due_scratch = due;
        }
        self.service_apply_ready()?;
        if let Some(svc) = self.service.as_ref() {
            debug_assert!(
                svc.stager.is_drained(),
                "service shutdown left batches in the reorder buffer"
            );
            debug_assert_eq!(
                svc.stager.next_seq().0,
                svc.next_seq,
                "allocated sequence range was not fully applied"
            );
        }
        Ok(())
    }

    /// Snapshot of the transport counters for the result.
    fn service_counters(&self) -> Option<ServiceCounters> {
        self.service.as_ref().map(|svc| {
            let stats = svc.stager.stats();
            ServiceCounters {
                batches_submitted: svc.batches_submitted,
                batches_applied: stats.released,
                posts_submitted: svc.posts_submitted,
                held_out_of_order: stats.held_out_of_order,
                max_pending: stats.max_pending,
                shutdown_flushes: svc.shutdown_flushes,
            }
        })
    }

    /// Crash/recovery bookkeeping for the step that is about to execute.
    ///
    /// As in the synchronous engine, the currently-crashed players (recovery
    /// coins, ascending — the exact coin draw order of the old flag-array
    /// walk) are merged with the due crash events in player order, so the
    /// counter sequence is bit-identical at O(crashed + due) per step.
    // lint: hot
    fn process_churn(&mut self) {
        let recovery = self.faults.recovery_rate;
        let start = self.crash_cursor;
        let mut end = start;
        while end < self.crash_events.len() && self.crash_events[end].0 <= self.step {
            end += 1;
        }
        self.crash_cursor = end;
        if end - start > 1 {
            // A multi-step due batch (first churn call only) needs the
            // player order restored; single-step batches already have it.
            self.crash_events[start..end].sort_unstable_by_key(|&(_, p)| p);
        }
        if end == start && self.crashed_list.is_empty() {
            return;
        }
        let mut next_list = std::mem::take(&mut self.churn_scratch);
        next_list.clear();
        let mut ci = 0;
        let mut di = start;
        loop {
            let next_crashed = self.crashed_list.get(ci).copied();
            let next_due = (di < end).then(|| self.crash_events[di].1);
            let crash_now = match (next_crashed, next_due) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(c), Some(d)) => d < c,
            };
            if crash_now {
                let p = self.crash_events[di].1;
                di += 1;
                self.crashed.insert(p as usize);
                self.fault_counters.crashes += 1;
                if let Ok(pos) = self.active.binary_search(&PlayerId(p)) {
                    self.active.remove(pos);
                }
                next_list.push(p);
            } else {
                let p = self.crashed_list[ci];
                ci += 1;
                if recovery > 0.0 && self.faults_rng.gen::<f64>() < recovery {
                    self.crashed.remove(p as usize);
                    self.fault_counters.recoveries += 1;
                    // Rejoin with pre-crash votes intact: the billboard kept
                    // every post, so only schedulability changes.
                    if !self.satisfied.contains(p as usize) {
                        let player = PlayerId(p);
                        if let Err(pos) = self.active.binary_search(&player) {
                            self.active.insert(pos, player);
                        }
                    }
                } else {
                    next_list.push(p);
                }
            }
        }
        std::mem::swap(&mut self.crashed_list, &mut next_list);
        self.churn_scratch = next_list;
    }

    /// `true` while some crashed player could still rejoin and probe.
    fn awaiting_recovery(&self) -> bool {
        self.faults.recovery_rate > 0.0
            && self
                .crashed_list
                .iter()
                .any(|&p| !self.satisfied.contains(p as usize))
    }

    /// The incrementally-maintained active list's oracle: a from-scratch
    /// rescan of the satisfaction flags.
    fn active_scan(&self) -> Vec<PlayerId> {
        (0..self.n_honest)
            .filter(|&p| !self.satisfied.contains(p as usize) && !self.crashed.contains(p as usize))
            .map(PlayerId)
            .collect()
    }

    /// Runs to completion.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidDirective`] if a step policy probes an
    /// object outside the universe, or [`SimError::Billboard`] if a post
    /// violates the billboard's append discipline (an engine bug guard).
    pub fn run(mut self) -> Result<AsyncResult, SimError> {
        self.run_mut()
    }

    /// Runs to completion and additionally hands back the final board and
    /// tracker, so callers (equivalence tests, the service bench) can
    /// compare end states across transports byte for byte.
    ///
    /// # Errors
    /// Same as [`run`](AsyncEngine::run).
    pub fn run_into_parts(mut self) -> Result<(AsyncResult, Billboard, VoteTracker), SimError> {
        let result = self.run_mut()?;
        Ok((result, self.board, self.tracker))
    }

    // lint: hot
    fn run_mut(&mut self) -> Result<AsyncResult, SimError> {
        loop {
            if self.step >= self.max_steps {
                break;
            }
            if self.service.is_some() {
                self.service_deliver_due()?;
            }
            if self.faults.crash_rate > 0.0 {
                self.process_churn();
            }
            if self.active.is_empty() {
                // With recoverable crashed players outstanding the clock
                // keeps ticking (an idle step) until someone rejoins;
                // otherwise the population is terminal and the run ends.
                if self.awaiting_recovery() {
                    self.step += 1;
                    continue;
                }
                break;
            }
            debug_assert_eq!(
                self.active,
                self.active_scan(),
                "incrementally-maintained active list diverged from the flag scan"
            );
            let player = self
                .schedule
                .next(self.step, &self.active, &mut self.sched_rng);
            debug_assert!(
                self.active.binary_search(&player).is_ok(),
                "schedule must pick an active player"
            );
            let round = Round(self.step);

            // the player's read-probe-post step (through a lagged view when
            // the fault plan delays reads)
            let lag_cutoff = Round(self.step.saturating_sub(self.faults.view_lag));
            if let Some(lt) = self.lagged_tracker.as_mut() {
                lt.ingest_until(&self.board, lag_cutoff);
            }
            let object = {
                let view = match self.lagged_tracker.as_ref() {
                    Some(lt) => BoardView::new_lagged(&self.board, lt, round, lag_cutoff),
                    None => BoardView::new(&self.board, &self.tracker, round),
                };
                self.policy
                    .probe(player, &view, &mut self.player_rngs[player.index()])
            };
            if object.0 >= self.world.m() {
                // lint: allow(alloc) — error path that aborts the run; never
                // taken on the per-step fast path
                return Err(SimError::InvalidDirective(format!(
                    "step policy probed object {} outside universe of {} objects",
                    object.0,
                    self.world.m()
                )));
            }
            {
                let outcome = &mut self.outcomes[player.index()];
                outcome.probes += 1;
                outcome.cost_paid += self.world.cost(object);
            }
            let good = self.world.is_good(object);
            let kind = if good {
                ReportKind::Positive
            } else {
                ReportKind::Negative
            };
            // Drop faults suppress the *post*, never the probe: testing is
            // local, so the player still learns the object's goodness.
            let dropped =
                self.faults.drop_rate > 0.0 && self.faults_rng.gen::<f64>() < self.faults.drop_rate;
            if dropped {
                self.fault_counters.posts_dropped += 1;
            } else {
                self.submit_post(round, player, object, self.world.value(object), kind)?;
            }
            if good {
                self.satisfied.insert(player.index());
                self.outcomes[player.index()].satisfied_step = Some(self.step);
                if let Ok(pos) = self.active.binary_search(&player) {
                    self.active.remove(pos);
                }
            }
            self.tracker.ingest(&self.board);

            // the adversary may interleave after every step
            let phase = PhaseInfo::plain("async");
            let posts = {
                let view = BoardView::new(&self.board, &self.tracker, round);
                let mut ctx = AdversaryCtx {
                    round,
                    view: &view,
                    dishonest: &self.dishonest,
                    phase: &phase,
                    world: self.world,
                    info: InfoModel::Adaptive,
                    rng: &mut self.adv_rng,
                };
                self.adversary.on_round(&mut ctx)
            };
            let mut appended = false;
            for post in posts {
                if post.author.0 >= self.n_honest
                    && post.author.0 < self.n
                    && post.object.0 < self.world.m()
                    && post.value.is_finite()
                {
                    appended |=
                        self.submit_post(round, post.author, post.object, post.value, post.kind)?;
                }
            }
            if appended {
                self.tracker.ingest(&self.board);
            }
            self.step += 1;
        }
        if self.service.is_some() {
            self.service_shutdown()?;
        }
        Ok(AsyncResult {
            steps: self.step,
            all_satisfied: self.satisfied.count_ones() == self.n_honest as usize,
            players: std::mem::take(&mut self.outcomes),
            faults: self.fault_counters,
            service: self.service_counters(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NullAdversary;

    fn world() -> World {
        World::binary(64, 4, 3).unwrap()
    }

    fn run(schedule: Box<dyn Schedule>, policy: Box<dyn StepPolicy>, seed: u64) -> AsyncResult {
        let w = world();
        AsyncEngine::new(
            16,
            16,
            seed,
            2_000_000,
            &w,
            policy,
            schedule,
            Box::new(NullAdversary),
        )
        .unwrap()
        .run()
        .unwrap()
    }

    #[test]
    fn round_robin_finishes_everyone() {
        let r = run(
            Box::new(RoundRobin::default()),
            Box::new(BalanceStep::new()),
            1,
        );
        assert!(r.all_satisfied);
        assert!(r.total_probes() >= 16);
        assert_eq!(r.steps, r.total_probes(), "every step is one probe");
    }

    #[test]
    fn random_schedule_finishes_everyone() {
        let r = run(Box::new(RandomSchedule), Box::new(RandomStep), 2);
        assert!(r.all_satisfied);
    }

    #[test]
    fn isolation_forces_solo_search() {
        // The victim is scheduled alone until satisfied: its probes must be
        // ≈ geometric(beta) with no help, i.e. it satisfies before anyone
        // else even takes a step.
        let r = run(
            Box::new(Isolate::new(PlayerId(0))),
            Box::new(BalanceStep::new()),
            3,
        );
        assert!(r.all_satisfied);
        let victim_done = r.players[0].satisfied_step.unwrap();
        for p in 1..16usize {
            if let Some(s) = r.players[p].satisfied_step {
                assert!(
                    s > victim_done,
                    "nobody may finish before the isolated victim"
                );
            }
        }
        assert_eq!(
            r.players[0].probes,
            victim_done + 1,
            "every step until the victim finished belonged to the victim"
        );
    }

    #[test]
    fn starved_player_catches_up_cheaply() {
        let r = run(
            Box::new(Starve::new(PlayerId(0))),
            Box::new(BalanceStep::new()),
            4,
        );
        assert!(r.all_satisfied);
        let victim = r.players[0].probes;
        let mean_other: f64 = r.players[1..].iter().map(|p| p.probes as f64).sum::<f64>() / 15.0;
        assert!(
            (victim as f64) < mean_other * 2.0 + 8.0,
            "a starved-then-released player reads the full billboard and \
             finishes cheaply (victim {victim} vs mean {mean_other})"
        );
    }

    #[test]
    fn async_engine_validates() {
        let w = world();
        assert!(AsyncEngine::new(
            0,
            0,
            0,
            10,
            &w,
            Box::new(RandomStep),
            Box::new(RandomSchedule),
            Box::new(NullAdversary)
        )
        .is_err());
        let topbeta = World::uniform_top_beta(16, 0.25, 0).unwrap();
        assert!(AsyncEngine::new(
            4,
            4,
            0,
            10,
            &topbeta,
            Box::new(RandomStep),
            Box::new(RandomSchedule),
            Box::new(NullAdversary)
        )
        .is_err());
    }

    #[test]
    fn service_passthrough_is_bit_identical_to_direct() {
        let w = world();
        let build = || {
            AsyncEngine::new(
                16,
                16,
                7,
                2_000_000,
                &w,
                Box::new(BalanceStep::new()),
                Box::new(RoundRobin::default()),
                Box::new(NullAdversary),
            )
            .unwrap()
        };
        let (direct, direct_board, direct_tracker) = build().run_into_parts().unwrap();
        // Passthrough plans (batch 1, delay 0) must not perturb anything,
        // for any producer count: same steps, same per-player outcomes,
        // same board posts, same tracker events.
        for producers in [1, 4] {
            let plan = ServicePlan::new(producers);
            assert!(plan.is_passthrough());
            let (result, board, tracker) = build()
                .with_service(plan)
                .unwrap()
                .run_into_parts()
                .unwrap();
            assert_eq!(result.steps, direct.steps);
            assert_eq!(result.players, direct.players);
            assert_eq!(board.posts(), direct_board.posts());
            assert_eq!(tracker.events(), direct_tracker.events());
            let counters = result.service.expect("service mode reports counters");
            assert_eq!(counters.posts_submitted as usize, board.len());
            assert_eq!(counters.batches_applied, counters.batches_submitted);
            assert_eq!(counters.held_out_of_order, 0);
            assert_eq!(counters.shutdown_flushes, 0);
        }
        assert!(direct.service.is_none(), "direct mode has no counters");
    }

    #[test]
    fn service_mode_with_delays_applies_every_post() {
        let w = world();
        let plan = ServicePlan::new(3)
            .with_batch_posts(4)
            .with_max_delivery_delay(6);
        let build = || {
            AsyncEngine::new(
                16,
                16,
                11,
                2_000_000,
                &w,
                Box::new(BalanceStep::new()),
                Box::new(RoundRobin::default()),
                Box::new(NullAdversary),
            )
            .unwrap()
            .with_service(plan)
            .unwrap()
        };
        let (a, board_a, tracker_a) = build().run_into_parts().unwrap();
        let counters = a.service.expect("service counters present");
        // The shutdown drain must land every allocated sequence number on
        // the board, and the merged log must be seq-ordered and gap-free.
        assert_eq!(counters.posts_submitted as usize, board_a.len());
        assert_eq!(counters.batches_applied, counters.batches_submitted);
        for (i, post) in board_a.posts().iter().enumerate() {
            assert_eq!(post.seq.0 as usize, i, "merged log has a seq gap");
        }
        // The tracker saw exactly the board: re-ingesting the final board
        // into a fresh tracker reproduces the same event log.
        let mut oracle = VoteTracker::new(16, w.m(), VotePolicy::single_vote());
        oracle.ingest(&board_a);
        assert_eq!(tracker_a.events(), oracle.events());
        // Deterministic in seed despite delivery delays.
        let (b, board_b, _) = build().run_into_parts().unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.players, b.players);
        assert_eq!(board_a.posts(), board_b.posts());
        assert_eq!(b.service, Some(counters));
    }

    #[test]
    fn service_plan_is_validated() {
        let w = world();
        let engine = AsyncEngine::new(
            4,
            4,
            0,
            10,
            &w,
            Box::new(RandomStep),
            Box::new(RandomSchedule),
            Box::new(NullAdversary),
        )
        .unwrap();
        assert!(engine.with_service(ServicePlan::new(0)).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = run(Box::new(RandomSchedule), Box::new(BalanceStep::new()), 9);
        let b = run(Box::new(RandomSchedule), Box::new(BalanceStep::new()), 9);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.total_probes(), b.total_probes());
    }

    #[test]
    fn schedule_names() {
        assert_eq!(RoundRobin::default().name(), "round-robin");
        assert_eq!(RandomSchedule.name(), "random");
        assert_eq!(Isolate::new(PlayerId(0)).name(), "isolate");
        assert_eq!(Starve::new(PlayerId(0)).name(), "starve");
        assert_eq!(BalanceStep::new().name(), "balance");
        assert_eq!(RandomStep.name(), "random");
    }
}
