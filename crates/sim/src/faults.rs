//! Deterministic fault injection for the simulation engines.
//!
//! The paper's model (Thm 4, Cor 5) assumes a perfectly reliable synchronous
//! billboard: every honest post lands, every read is fresh, and honest
//! players never leave. A [`FaultPlan`] relaxes each assumption
//! independently so degradation becomes *measurable* rather than assumed:
//!
//! * **Dropped posts** (`drop_rate`): an honest probe happens and the player
//!   learns the outcome locally, but the resulting post never lands on the
//!   billboard — the vote is lost to everyone else.
//! * **Stale reads** (`view_lag`): honest players read a
//!   [`BoardView`](distill_billboard::BoardView) that lags `L` rounds behind
//!   the billboard's true contents.
//! * **Crash churn** (`crash_rate`/`crash_window`/`recovery_rate`): an
//!   honest player crash-stops at a predetermined round (chosen uniformly in
//!   `[0, crash_window)`), stops probing, and — if `recovery_rate > 0` —
//!   rejoins later with its pre-crash votes intact. `crash_rate` is the
//!   probability a player *ever* crashes, so the effective honest fraction
//!   shrinks to α′ = α·(1 − `crash_rate`) when recovery is disabled.
//!
//! Every random draw comes from the dedicated
//! [`Stream::Faults`](crate::rng::Stream::Faults) RNG stream, so a plan with
//! all faults disabled (the [`Default`]) leaves no-fault executions
//! bit-identical to an engine without the fault layer, and per-player
//! probe/error streams stay independent of the fault schedule.

/// Configuration of the fault layer, carried on
/// [`SimConfig`](crate::config::SimConfig).
///
/// The default plan disables every fault and is guaranteed not to perturb
/// the execution (property-tested in `tests/trace_consistency.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that an individual honest post is dropped
    /// before reaching the billboard. `0.0` disables post drops.
    pub drop_rate: f64,
    /// How many rounds behind the billboard honest reads lag. `0` means
    /// fresh reads. Adversaries always read fresh state (worst case).
    pub view_lag: u64,
    /// Probability in `[0, 1]` that an honest player ever crashes. `0.0`
    /// disables churn.
    pub crash_rate: f64,
    /// Crash rounds are drawn uniformly from `[0, crash_window)`. Must be
    /// positive when `crash_rate > 0`. Defaults to 64.
    pub crash_window: u64,
    /// Per-round probability in `[0, 1]` that a crashed player recovers and
    /// rejoins. `0.0` means crash-stop (the player is gone for good).
    pub recovery_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            view_lag: 0,
            crash_rate: 0.0,
            crash_window: 64,
            recovery_rate: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan with every fault disabled (same as [`Default`]).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Sets the per-post drop probability.
    #[must_use]
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the honest read lag in rounds.
    #[must_use]
    pub fn with_view_lag(mut self, lag: u64) -> Self {
        self.view_lag = lag;
        self
    }

    /// Sets the probability that a player ever crashes.
    #[must_use]
    pub fn with_crash_rate(mut self, rate: f64) -> Self {
        self.crash_rate = rate;
        self
    }

    /// Sets the window `[0, w)` from which crash rounds are drawn.
    #[must_use]
    pub fn with_crash_window(mut self, window: u64) -> Self {
        self.crash_window = window;
        self
    }

    /// Sets the per-round recovery probability for crashed players.
    #[must_use]
    pub fn with_recovery_rate(mut self, rate: f64) -> Self {
        self.recovery_rate = rate;
        self
    }

    /// True when the plan cannot perturb an execution: no drops, no lag,
    /// no churn. The engines take the exact unfaulted code path in this
    /// case, which is what makes default-plan runs bit-identical.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0 && self.view_lag == 0 && self.crash_rate == 0.0
    }

    /// Validates the plan's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: probabilities
    /// outside `[0, 1]` (or non-finite), or a zero `crash_window` while
    /// `crash_rate > 0`.
    pub fn validate(&self) -> Result<(), String> {
        let probabilities = [
            ("drop_rate", self.drop_rate),
            ("crash_rate", self.crash_rate),
            ("recovery_rate", self.recovery_rate),
        ];
        for (name, value) in probabilities {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(format!("{name} must be in [0, 1], got {value}"));
            }
        }
        if self.crash_rate > 0.0 && self.crash_window == 0 {
            return Err("crash_window must be positive when crash_rate > 0".to_string());
        }
        Ok(())
    }
}

/// Per-fault event counters, reported on
/// [`SimResult`](crate::metrics::SimResult) and
/// [`AsyncResult`](crate::async_engine::AsyncResult).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Honest posts suppressed before reaching the billboard.
    pub posts_dropped: u64,
    /// Crash events (each player crashes at most once).
    pub crashes: u64,
    /// Recovery events (crashed players that rejoined).
    pub recoveries: u64,
}

impl FaultCounters {
    /// True when no fault event occurred during the execution.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.posts_dropped == 0 && self.crashes == 0 && self.recoveries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn builders_set_fields_and_flip_noop() {
        let plan = FaultPlan::none()
            .with_drop_rate(0.25)
            .with_view_lag(3)
            .with_crash_rate(0.1)
            .with_crash_window(16)
            .with_recovery_rate(0.5);
        assert!(!plan.is_noop());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.drop_rate, 0.25);
        assert_eq!(plan.view_lag, 3);
        assert_eq!(plan.crash_rate, 0.1);
        assert_eq!(plan.crash_window, 16);
        assert_eq!(plan.recovery_rate, 0.5);
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        assert!(FaultPlan::none().with_drop_rate(1.5).validate().is_err());
        assert!(FaultPlan::none().with_drop_rate(-0.1).validate().is_err());
        assert!(FaultPlan::none()
            .with_crash_rate(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_recovery_rate(2.0)
            .validate()
            .is_err());
    }

    #[test]
    fn zero_crash_window_requires_zero_crash_rate() {
        let plan = FaultPlan::none().with_crash_rate(0.5).with_crash_window(0);
        assert!(plan.validate().is_err());
        // window irrelevant while churn is off
        let idle = FaultPlan::none().with_crash_window(0);
        assert!(idle.validate().is_ok());
        assert!(idle.is_noop());
    }

    #[test]
    fn counters_default_empty() {
        let c = FaultCounters::default();
        assert!(c.is_empty());
        let c = FaultCounters {
            posts_dropped: 1,
            ..FaultCounters::default()
        };
        assert!(!c.is_empty());
    }
}
