//! Deterministic randomness streams.
//!
//! Every simulation draws from a single master seed. Per-player, adversary
//! and world streams are derived with a SplitMix64 hash so that:
//!
//! * the whole simulation is reproducible from one `u64`;
//! * players' coin flips are independent streams (changing how many random
//!   numbers one player draws never perturbs another player's stream);
//! * trial `t` of an experiment uses `derive(master, t)` and is independent
//!   of every other trial.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
///
/// This is the standard SplitMix64 output function (Steele, Lea, Flood 2014),
/// used here purely to derive independent seeds — not as the simulation RNG
/// itself (that is `rand::rngs::SmallRng`).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed for stream `stream` of master seed `master`.
///
/// ```
/// use distill_sim::rng::derive_seed;
/// assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
/// assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
/// assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
/// ```
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)))
}

/// Stream tags, keeping the different consumers of randomness disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Per-player protocol coins (honest players).
    Player(u32),
    /// The adversary's private coins.
    Adversary,
    /// World generation (object values, good-set placement).
    World,
    /// Fault-injection draws (post drops, crash schedule, recoveries).
    Faults,
    /// Free-form auxiliary stream.
    Aux(u64),
}

impl Stream {
    /// The tag namespace: players occupy `[0, 2^32)`, the fixed singleton
    /// streams sit at `2^40 + i`, and `Aux(k)` maps to `2^41 + k` with
    /// wrapping arithmetic. `Aux` tags are disjoint from every other stream
    /// for `k < 2^64 − 2^41 − 2^32` (wrap-around past that re-enters the
    /// player range); in practice auxiliary keys are tiny, and wrapping
    /// keeps the map total — no overflow panic for any `k`.
    fn tag(self) -> u64 {
        match self {
            Stream::Player(p) => u64::from(p),
            Stream::Adversary => 1 << 40,
            Stream::World => (1 << 40) + 1,
            Stream::Faults => (1 << 40) + 2,
            Stream::Aux(k) => (1u64 << 41).wrapping_add(k),
        }
    }
}

/// A `SmallRng` for the given stream of the master seed.
pub fn stream_rng(master: u64, stream: Stream) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream.tag()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 0);
        assert_eq!(a, b);
        assert_ne!(derive_seed(42, 1), a);
        assert_ne!(derive_seed(43, 0), a);
    }

    #[test]
    fn streams_do_not_collide() {
        let tags = [
            Stream::Player(0).tag(),
            Stream::Player(u32::MAX).tag(),
            Stream::Adversary.tag(),
            Stream::World.tag(),
            Stream::Faults.tag(),
            Stream::Aux(0).tag(),
            Stream::Aux(99).tag(),
        ];
        for (i, a) in tags.iter().enumerate() {
            for (j, b) in tags.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "stream tags {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn aux_tag_never_panics_on_extreme_keys() {
        // Regression: `(1 << 41) + k` overflowed in debug builds for large
        // k. Wrapping arithmetic keeps the map total.
        for k in [0, 1, u64::MAX / 2, u64::MAX - (1 << 41), u64::MAX] {
            let _ = Stream::Aux(k).tag();
        }
    }

    #[test]
    fn stream_rngs_are_reproducible() {
        let mut r1 = stream_rng(7, Stream::Player(3));
        let mut r2 = stream_rng(7, Stream::Player(3));
        let x1: u64 = r1.gen();
        let x2: u64 = r2.gen();
        assert_eq!(x1, x2);
        let mut r3 = stream_rng(7, Stream::Player(4));
        let x3: u64 = r3.gen();
        assert_ne!(x1, x3);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Tag disjointness over the representative ranges: any player
            /// tag, any fixed singleton tag, and any `Aux` key below the
            /// wrap-around threshold map to pairwise-distinct values.
            #[test]
            fn tags_are_disjoint_over_representative_ranges(
                p in any::<u32>(),
                k in 0u64..(1u64 << 62),
            ) {
                let player = Stream::Player(p).tag();
                let aux = Stream::Aux(k).tag();
                let fixed = [
                    Stream::Adversary.tag(),
                    Stream::World.tag(),
                    Stream::Faults.tag(),
                ];
                prop_assert_ne!(player, aux);
                for tag in fixed {
                    prop_assert_ne!(player, tag);
                    prop_assert_ne!(aux, tag);
                }
            }
        }
    }

    #[test]
    fn splitmix_known_properties() {
        // Bijective-ish sanity: no trivial fixed point at small inputs.
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
        assert_ne!(splitmix64(0), splitmix64(1));
    }
}
