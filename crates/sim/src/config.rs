//! Simulation configuration.

use crate::adversary::InfoModel;
use crate::error::SimError;
use crate::faults::FaultPlan;
use distill_billboard::{ObjectId, PlayerId, VotePolicy};
use std::fmt;

/// When the simulation stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Run until every honest player is satisfied (has probed a good object),
    /// or `max_rounds` elapse — the local-testing setting.
    AllSatisfied {
        /// Safety valve; the run is marked unterminated if reached.
        max_rounds: u64,
    },
    /// Run exactly `rounds` rounds — the no-local-testing setting (§5.3),
    /// where players stop at a prescribed time.
    Horizon {
        /// The fixed number of rounds.
        rounds: u64,
    },
    /// Run until *any* honest player is satisfied (or `max_rounds` elapse) —
    /// used by collective-work experiments (Theorem 1) that only measure the
    /// first discovery.
    AnySatisfied {
        /// Safety valve.
        max_rounds: u64,
    },
}

impl StopRule {
    /// Run-to-satisfaction with the given safety cap.
    pub fn all_satisfied(max_rounds: u64) -> Self {
        StopRule::AllSatisfied { max_rounds }
    }

    /// Fixed horizon.
    pub fn horizon(rounds: u64) -> Self {
        StopRule::Horizon { rounds }
    }

    /// Run-to-first-discovery with the given safety cap.
    pub fn any_satisfied(max_rounds: u64) -> Self {
        StopRule::AnySatisfied { max_rounds }
    }

    /// The maximum number of rounds this rule can run.
    pub fn round_cap(&self) -> u64 {
        match *self {
            StopRule::AllSatisfied { max_rounds } => max_rounds,
            StopRule::Horizon { rounds } => rounds,
            StopRule::AnySatisfied { max_rounds } => max_rounds,
        }
    }
}

impl fmt::Display for StopRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopRule::AllSatisfied { max_rounds } => {
                write!(f, "all-satisfied(max={max_rounds})")
            }
            StopRule::Horizon { rounds } => write!(f, "horizon({rounds})"),
            StopRule::AnySatisfied { max_rounds } => {
                write!(f, "any-satisfied(max={max_rounds})")
            }
        }
    }
}

/// Which honest players take a step in each round.
///
/// The paper's synchronous model has every active player probe once per
/// round; §1.2 motivates it as "an abstraction of asynchronous models where
/// players are running at more or less the same speed", noting that a
/// schedule which starves a player forces it to search alone. These
/// participation patterns let experiments quantify exactly that (E15):
/// slowing players down degrades collaboration gracefully, and a straggler
/// that wakes up late still catches up in `O(1/α)` rounds via advice probes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Participation {
    /// The synchronous model: every unsatisfied honest player acts each round.
    #[default]
    Full,
    /// Each honest player independently acts with probability `p` per round
    /// (players running at `p`× speed).
    RandomSubset {
        /// Per-round participation probability, `0 < p ≤ 1`.
        p: f64,
    },
    /// Honest player `i` acts in rounds where `(round + i) % groups == 0` —
    /// a fair but slow rotation (each player acts every `groups` rounds).
    RoundRobin {
        /// Number of rotation groups, ≥ 1.
        groups: u32,
    },
    /// One player sleeps through the first `until_round` rounds, then joins —
    /// the adversarial-scheduler vignette from §1.2.
    Straggler {
        /// The delayed player (must be honest).
        player: PlayerId,
        /// First round in which it participates.
        until_round: u64,
    },
}

/// Validates a raw (e.g. command-line) population size against the `u32`
/// player-id space. This is the single entry point for mega-scale front ends:
/// ids are checked once here, and the engines then index with lossless
/// `u32 → usize` widenings only.
///
/// # Errors
/// Returns [`SimError::TooManyPlayers`] when `n` does not fit a `u32`.
///
/// ```
/// use distill_sim::player_count;
/// assert_eq!(player_count(1_000_000).unwrap(), 1_000_000u32);
/// assert!(player_count(u64::from(u32::MAX) + 1).is_err());
/// ```
pub fn player_count(n: u64) -> Result<u32, SimError> {
    u32::try_from(n).map_err(|_| SimError::TooManyPlayers { n })
}

impl fmt::Display for Participation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Participation::Full => f.write_str("full"),
            Participation::RandomSubset { p } => write!(f, "random-subset(p={p})"),
            Participation::RoundRobin { groups } => write!(f, "round-robin({groups})"),
            Participation::Straggler {
                player,
                until_round,
            } => {
                write!(f, "straggler({player} until r{until_round})")
            }
        }
    }
}

/// Full configuration of one simulated execution.
///
/// Players `0 .. n_honest` are honest; players `n_honest .. n_players` are
/// controlled by the adversary. (Identities carry no information in the
/// model — the honest protocol never treats ids asymmetrically — so fixing
/// the split loses no generality and keeps instances reproducible.)
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Total number of players `n`.
    pub n_players: u32,
    /// Number of honest players (`⌈αn⌉` of the paper).
    pub n_honest: u32,
    /// Master seed; every random stream in the run derives from it.
    pub seed: u64,
    /// Adversary information model.
    pub info: InfoModel,
    /// Reader-side vote policy.
    pub policy: VotePolicy,
    /// Stop rule.
    pub stop: StopRule,
    /// Whether honest players post negative reports for bad probes. Faithful
    /// to §2.1 ("players post the value of objects they have probed after
    /// each step") and required by slander experiments; may be disabled for
    /// large benches since DISTILL provably ignores them.
    pub post_negative_reports: bool,
    /// Probability that an honest player, upon probing a *bad* object,
    /// erroneously posts a positive report for it (§4.1 "erroneous votes").
    pub honest_error_rate: f64,
    /// Players that begin the run already satisfied, with the given object as
    /// their (round-0) vote. Used by endgame experiments (Lemma 6).
    pub pre_satisfied: Vec<(PlayerId, ObjectId)>,
    /// Which honest players act each round (default: all — the synchronous
    /// model).
    pub participation: Participation,
    /// Record a full event trace (memory-heavy; tests/debugging only).
    pub record_trace: bool,
    /// Record the per-round satisfaction curve (`satisfied_per_round` in the
    /// result). On by default; mega-scale runs with huge round caps can turn
    /// it off so the steady-state round loop appends nothing that grows
    /// without bound.
    pub record_satisfaction_curve: bool,
    /// Register the cohort's tally window with the vote tracker so that
    /// segment-boundary `ℓ_t(i)` queries are answered from incremental
    /// counters (default). Disabling forces every window query onto the
    /// event-stream scan — results must be bit-identical either way, which is
    /// what the determinism oracle tests assert.
    pub register_tally_windows: bool,
    /// Deterministic fault injection: dropped posts, stale reads, crash
    /// churn. The default plan disables every fault and leaves executions
    /// bit-identical to a fault-free engine.
    pub faults: FaultPlan,
}

impl SimConfig {
    /// A configuration with `n_players` players of which `n_honest` honest,
    /// driven by `seed`. Defaults: adaptive adversary, single-vote policy,
    /// all-satisfied stop at 1,000,000 rounds, negative reports on, no
    /// honest errors, no pre-satisfied players, no trace.
    pub fn new(n_players: u32, n_honest: u32, seed: u64) -> Self {
        SimConfig {
            n_players,
            n_honest,
            seed,
            info: InfoModel::Adaptive,
            policy: VotePolicy::single_vote(),
            stop: StopRule::all_satisfied(1_000_000),
            post_negative_reports: true,
            honest_error_rate: 0.0,
            pre_satisfied: Vec::new(),
            participation: Participation::Full,
            record_trace: false,
            record_satisfaction_curve: true,
            register_tally_windows: true,
            faults: FaultPlan::default(),
        }
    }

    /// Sets the information model.
    pub fn with_info(mut self, info: InfoModel) -> Self {
        self.info = info;
        self
    }

    /// Sets the vote policy.
    pub fn with_policy(mut self, policy: VotePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the stop rule.
    pub fn with_stop(mut self, stop: StopRule) -> Self {
        self.stop = stop;
        self
    }

    /// Enables or disables negative reports from honest players.
    pub fn with_negative_reports(mut self, on: bool) -> Self {
        self.post_negative_reports = on;
        self
    }

    /// Sets the honest erroneous-vote rate (§4.1).
    pub fn with_honest_error_rate(mut self, rate: f64) -> Self {
        self.honest_error_rate = rate;
        self
    }

    /// Marks players as already satisfied at the start (their votes are
    /// seeded on the billboard at round 0).
    pub fn with_pre_satisfied(mut self, pre: Vec<(PlayerId, ObjectId)>) -> Self {
        self.pre_satisfied = pre;
        self
    }

    /// Enables event tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Enables or disables the per-round satisfaction curve (see
    /// [`SimConfig::record_satisfaction_curve`]).
    pub fn with_satisfaction_curve(mut self, on: bool) -> Self {
        self.record_satisfaction_curve = on;
        self
    }

    /// Sets the participation pattern.
    pub fn with_participation(mut self, participation: Participation) -> Self {
        self.participation = participation;
        self
    }

    /// Enables or disables incremental tally-window registration (see
    /// [`SimConfig::register_tally_windows`]). Mostly for equivalence tests;
    /// production runs should leave it on.
    pub fn with_tally_window_registration(mut self, on: bool) -> Self {
        self.register_tally_windows = on;
        self
    }

    /// Sets the fault-injection plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The honest fraction `α`.
    pub fn alpha(&self) -> f64 {
        f64::from(self.n_honest) / f64::from(self.n_players)
    }

    /// The honest player ids, `0 .. n_honest`.
    pub fn honest_players(&self) -> impl Iterator<Item = PlayerId> {
        (0..self.n_honest).map(PlayerId)
    }

    /// The dishonest player ids, `n_honest .. n_players`.
    pub fn dishonest_players(&self) -> Vec<PlayerId> {
        (self.n_honest..self.n_players).map(PlayerId).collect()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if there are zero players, zero
    /// honest players, more honest players than players, an out-of-range
    /// error rate, or a pre-satisfied entry referencing a non-honest player.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_players == 0 {
            return Err(SimError::InvalidConfig("n_players must be positive".into()));
        }
        if self.n_honest == 0 {
            return Err(SimError::InvalidConfig(
                "at least one honest player is required".into(),
            ));
        }
        if self.n_honest > self.n_players {
            return Err(SimError::InvalidConfig(format!(
                "n_honest {} exceeds n_players {}",
                self.n_honest, self.n_players
            )));
        }
        if !(0.0..=1.0).contains(&self.honest_error_rate) {
            return Err(SimError::InvalidConfig(format!(
                "honest_error_rate {} out of [0, 1]",
                self.honest_error_rate
            )));
        }
        for &(p, _) in &self.pre_satisfied {
            if p.0 >= self.n_honest {
                return Err(SimError::InvalidConfig(format!(
                    "pre-satisfied player {p} is not honest"
                )));
            }
        }
        match self.participation {
            Participation::Full => {}
            Participation::RandomSubset { p } => {
                if !(0.0 < p && p <= 1.0) {
                    return Err(SimError::InvalidConfig(format!(
                        "participation probability {p} out of (0, 1]"
                    )));
                }
            }
            Participation::RoundRobin { groups } => {
                if groups == 0 {
                    return Err(SimError::InvalidConfig(
                        "round-robin needs at least one group".into(),
                    ));
                }
            }
            Participation::Straggler { player, .. } => {
                if player.0 >= self.n_honest {
                    return Err(SimError::InvalidConfig(format!(
                        "straggler {player} is not honest"
                    )));
                }
            }
        }
        self.faults
            .validate()
            .map_err(|msg| SimError::InvalidConfig(format!("fault plan: {msg}")))?;
        Ok(())
    }
}

/// Configuration of the asynchronous engine's **service transport** mode
/// (see [`AsyncEngine::with_service`](crate::async_engine::AsyncEngine::with_service)).
///
/// In service mode honest and adversarial posts no longer hit the billboard
/// directly: each post is routed to one of `producers` staging buffers
/// (sharded by author), flushed as an explicit-sequence batch once the
/// buffer holds `batch_posts` drafts, and delivered to the board after an
/// adversarially random delay of up to `max_delivery_delay` steps. A
/// reorder buffer merges deliveries back into sequence order, so the final
/// log is bit-identical to the submission order regardless of delivery
/// scrambling — the in-simulation twin of the threaded `distill-service`
/// path.
///
/// The degenerate plan (`batch_posts == 1`, `max_delivery_delay == 0`)
/// stages and applies every post immediately and is guaranteed to leave
/// executions bit-identical to direct mode (property-tested in
/// `tests/service_concurrency.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServicePlan {
    /// How many staging buffers (simulated producers) posts are sharded
    /// over by author id. Must be ≥ 1.
    pub producers: u32,
    /// Buffered posts per producer before a flush submits the batch.
    /// Must be ≥ 1; `1` flushes every post immediately.
    pub batch_posts: usize,
    /// Maximum delivery delay in steps for a submitted batch; the actual
    /// delay is drawn uniformly from `[0, max]` on the dedicated
    /// `Stream::Aux(2)` RNG stream. `0` delivers synchronously (and draws
    /// nothing from the stream).
    pub max_delivery_delay: u64,
}

impl Default for ServicePlan {
    fn default() -> Self {
        ServicePlan {
            producers: 1,
            batch_posts: 1,
            max_delivery_delay: 0,
        }
    }
}

impl ServicePlan {
    /// A plan with `producers` staging buffers, immediate single-post
    /// flushes, and synchronous delivery.
    #[must_use]
    pub fn new(producers: u32) -> Self {
        ServicePlan {
            producers,
            ..ServicePlan::default()
        }
    }

    /// Sets the per-producer batch size.
    #[must_use]
    pub fn with_batch_posts(mut self, posts: usize) -> Self {
        self.batch_posts = posts;
        self
    }

    /// Sets the maximum delivery delay in steps.
    #[must_use]
    pub fn with_max_delivery_delay(mut self, steps: u64) -> Self {
        self.max_delivery_delay = steps;
        self
    }

    /// True when the plan cannot perturb an execution relative to direct
    /// mode: every post is flushed alone and delivered synchronously.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.batch_posts == 1 && self.max_delivery_delay == 0
    }

    /// Validates the plan's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: zero producers or
    /// a zero batch size.
    pub fn validate(&self) -> Result<(), String> {
        if self.producers == 0 {
            return Err("producers must be ≥ 1".into());
        }
        if self.batch_posts == 0 {
            return Err("batch_posts must be ≥ 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SimConfig::new(10, 8, 1);
        assert!(c.validate().is_ok());
        assert!((c.alpha() - 0.8).abs() < 1e-12);
        assert_eq!(c.honest_players().count(), 8);
        assert_eq!(c.dishonest_players(), vec![PlayerId(8), PlayerId(9)]);
        assert_eq!(c.info, InfoModel::Adaptive);
    }

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(4, 2, 0)
            .with_info(InfoModel::Oblivious)
            .with_policy(VotePolicy::multi_vote(2))
            .with_stop(StopRule::horizon(100))
            .with_negative_reports(false)
            .with_honest_error_rate(0.1)
            .with_pre_satisfied(vec![(PlayerId(0), ObjectId(1))])
            .with_trace(true);
        assert!(c.validate().is_ok());
        assert_eq!(c.stop.round_cap(), 100);
        assert!(c.record_trace);
        assert!(!c.post_negative_reports);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(SimConfig::new(0, 0, 0).validate().is_err());
        assert!(SimConfig::new(5, 0, 0).validate().is_err());
        assert!(SimConfig::new(5, 6, 0).validate().is_err());
        assert!(SimConfig::new(5, 5, 0)
            .with_honest_error_rate(1.5)
            .validate()
            .is_err());
        assert!(SimConfig::new(5, 2, 0)
            .with_pre_satisfied(vec![(PlayerId(3), ObjectId(0))])
            .validate()
            .is_err());
        assert!(SimConfig::new(5, 5, 0)
            .with_faults(FaultPlan::none().with_drop_rate(1.2))
            .validate()
            .is_err());
        assert!(SimConfig::new(5, 5, 0)
            .with_faults(FaultPlan::none().with_crash_rate(0.5).with_crash_window(0))
            .validate()
            .is_err());
        assert!(SimConfig::new(5, 5, 0)
            .with_faults(FaultPlan::none().with_drop_rate(0.5).with_view_lag(2))
            .validate()
            .is_ok());
    }

    #[test]
    fn participation_validation() {
        let base = SimConfig::new(8, 4, 0);
        assert!(base
            .clone()
            .with_participation(Participation::RandomSubset { p: 0.5 })
            .validate()
            .is_ok());
        assert!(base
            .clone()
            .with_participation(Participation::RandomSubset { p: 0.0 })
            .validate()
            .is_err());
        assert!(base
            .clone()
            .with_participation(Participation::RoundRobin { groups: 0 })
            .validate()
            .is_err());
        assert!(base
            .clone()
            .with_participation(Participation::Straggler {
                player: PlayerId(5),
                until_round: 10
            })
            .validate()
            .is_err());
        assert!(base
            .with_participation(Participation::Straggler {
                player: PlayerId(0),
                until_round: 10
            })
            .validate()
            .is_ok());
        assert_eq!(Participation::default(), Participation::Full);
        assert!(Participation::Full.to_string().contains("full"));
        assert!(Participation::RoundRobin { groups: 3 }
            .to_string()
            .contains('3'));
        assert!(Participation::RandomSubset { p: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(Participation::Straggler {
            player: PlayerId(1),
            until_round: 9
        }
        .to_string()
        .contains("r9"));
    }

    #[test]
    fn service_plan_builders_and_validation() {
        let plan = ServicePlan::new(4)
            .with_batch_posts(8)
            .with_max_delivery_delay(3);
        assert_eq!(plan.producers, 4);
        assert_eq!(plan.batch_posts, 8);
        assert_eq!(plan.max_delivery_delay, 3);
        assert!(plan.validate().is_ok());
        assert!(!plan.is_passthrough());
        assert!(ServicePlan::default().is_passthrough());
        assert!(ServicePlan::new(0).validate().is_err());
        assert!(ServicePlan::new(1).with_batch_posts(0).validate().is_err());
    }

    #[test]
    fn stop_rule_display_and_cap() {
        assert_eq!(StopRule::all_satisfied(5).round_cap(), 5);
        assert_eq!(StopRule::horizon(7).round_cap(), 7);
        assert_eq!(StopRule::any_satisfied(9).round_cap(), 9);
        assert!(StopRule::all_satisfied(5).to_string().contains("max=5"));
        assert!(StopRule::horizon(7).to_string().contains("7"));
        assert!(StopRule::any_satisfied(9).to_string().contains("any"));
    }
}
