//! The object universe: values, costs, and the good set.

use crate::error::SimError;
use crate::object_model::ObjectModel;
use crate::rng::{stream_rng, Stream};
use distill_billboard::ObjectId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// The result of probing an object: the player pays `cost` and learns `value`
/// (§2: "In probing an object i, the player pays the (known) cost of i and
/// learns the (hitherto unknown) value of that object").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// The probed object.
    pub object: ObjectId,
    /// The true value revealed by the probe.
    pub value: f64,
    /// The cost charged for the probe.
    pub cost: f64,
}

/// The ground-truth object universe.
///
/// A `World` owns the unknown values, the known costs, and the classification
/// of each object as good or bad, under one of the two object models of §2.2.
/// It is immutable during a simulation, and shared by reference between the
/// engine and (per the Byzantine model) the adversary, which is assumed to
/// know everything.
#[derive(Debug, Clone)]
pub struct World {
    values: Vec<f64>,
    costs: Vec<f64>,
    good: Vec<bool>,
    good_count: u32,
    model: ObjectModel,
}

impl World {
    /// Builds a world from explicit values and costs under `model`.
    ///
    /// Goodness is derived from the model: value ≥ threshold for
    /// [`ObjectModel::LocalTesting`], top `⌈βm⌉` values for
    /// [`ObjectModel::TopBeta`] (ties broken by lower object id).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWorld`] if `values` and `costs` differ in
    /// length, are empty, contain negatives/NaN, or if no object qualifies as
    /// good.
    pub fn from_parts(
        values: Vec<f64>,
        costs: Vec<f64>,
        model: ObjectModel,
    ) -> Result<Self, SimError> {
        if values.is_empty() {
            return Err(SimError::InvalidWorld("world must contain objects".into()));
        }
        if values.len() != costs.len() {
            return Err(SimError::InvalidWorld(format!(
                "{} values but {} costs",
                values.len(),
                costs.len()
            )));
        }
        if values
            .iter()
            .chain(costs.iter())
            .any(|v| !v.is_finite() || *v < 0.0)
        {
            return Err(SimError::InvalidWorld(
                "values and costs must be finite and non-negative".into(),
            ));
        }
        let good = match model {
            ObjectModel::LocalTesting { threshold } => {
                values.iter().map(|&v| v >= threshold).collect::<Vec<_>>()
            }
            ObjectModel::TopBeta { beta } => {
                if !(0.0 < beta && beta <= 1.0) {
                    return Err(SimError::InvalidWorld(format!("beta {beta} out of (0, 1]")));
                }
                let m = values.len();
                let k = ((beta * m as f64).ceil() as usize).clamp(1, m);
                let mut idx: Vec<usize> = (0..m).collect();
                // highest value first; ties broken by lower id
                idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
                let mut good = vec![false; m];
                for &i in idx.iter().take(k) {
                    good[i] = true;
                }
                good
            }
        };
        // lint: allow(cast) — good has exactly m: u32 entries, so the count
        // fits
        let good_count = good.iter().filter(|&&g| g).count() as u32;
        if good_count == 0 {
            return Err(SimError::InvalidWorld(
                "world must contain at least one good object".into(),
            ));
        }
        Ok(World {
            values,
            costs,
            good,
            good_count,
            model,
        })
    }

    /// The canonical unit-cost binary world: `m` objects, `n_good` of them
    /// good (value 1.0) and the rest bad (value 0.0), placed uniformly at
    /// random by `seed`; all costs are 1; local testing with threshold 0.5.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidWorld`] if `m == 0` or `n_good` is 0 or
    /// exceeds `m`.
    pub fn binary(m: u32, n_good: u32, seed: u64) -> Result<Self, SimError> {
        if n_good == 0 || n_good > m {
            return Err(SimError::InvalidWorld(format!(
                "n_good {n_good} must be in 1..={m}"
            )));
        }
        let mut rng = stream_rng(seed, Stream::World);
        let mut ids: Vec<usize> = (0..m as usize).collect();
        ids.shuffle(&mut rng);
        let mut values = vec![0.0; m as usize];
        for &i in ids.iter().take(n_good as usize) {
            values[i] = 1.0;
        }
        World::from_parts(
            values,
            vec![1.0; m as usize],
            ObjectModel::LocalTesting { threshold: 0.5 },
        )
    }

    /// A world with i.i.d. `U[0,1)` values and unit costs, good = top `βm`
    /// objects, **without** local testing (the §5.3 setting).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidWorld`] if `m == 0` or `beta ∉ (0,1]`.
    pub fn uniform_top_beta(m: u32, beta: f64, seed: u64) -> Result<Self, SimError> {
        if m == 0 {
            return Err(SimError::InvalidWorld("world must contain objects".into()));
        }
        let mut rng = stream_rng(seed, Stream::World);
        let values: Vec<f64> = (0..m).map(|_| rng.gen::<f64>()).collect();
        World::from_parts(values, vec![1.0; m as usize], ObjectModel::TopBeta { beta })
    }

    /// A Theorem-12 world with geometric **cost classes**: class `i` holds
    /// `class_sizes[i]` objects of cost `2^i`. Exactly `goods` good objects
    /// are placed (uniformly at random) in class `good_class`; all other
    /// objects are bad. Local testing with threshold 0.5.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidWorld`] on an empty layout, an out-of-range
    /// `good_class`, or `goods` exceeding the class size.
    pub fn cost_classes(
        class_sizes: &[u32],
        good_class: usize,
        goods: u32,
        seed: u64,
    ) -> Result<Self, SimError> {
        if class_sizes.is_empty() || class_sizes.iter().all(|&s| s == 0) {
            return Err(SimError::InvalidWorld("cost classes are empty".into()));
        }
        if good_class >= class_sizes.len() {
            return Err(SimError::InvalidWorld(format!(
                "good_class {good_class} out of range (have {} classes)",
                class_sizes.len()
            )));
        }
        if goods == 0 || goods > class_sizes[good_class] {
            return Err(SimError::InvalidWorld(format!(
                "goods {goods} must be in 1..={}",
                class_sizes[good_class]
            )));
        }
        let mut values = Vec::new();
        let mut costs = Vec::new();
        let mut class_start = Vec::new();
        for (i, &size) in class_sizes.iter().enumerate() {
            class_start.push(values.len());
            // lint: allow(cast) — cost classes number at most 64 (u64 cost
            // doubles per class), so the index fits any width
            let cost = (2u64.pow(i as u32)) as f64;
            for _ in 0..size {
                values.push(0.0);
                costs.push(cost);
            }
        }
        let mut rng = stream_rng(seed, Stream::World);
        let mut slots: Vec<usize> = (0..class_sizes[good_class] as usize)
            .map(|k| class_start[good_class] + k)
            .collect();
        slots.shuffle(&mut rng);
        for &slot in slots.iter().take(goods as usize) {
            values[slot] = 1.0;
        }
        World::from_parts(values, costs, ObjectModel::LocalTesting { threshold: 0.5 })
    }

    /// Number of objects `m`.
    #[inline]
    pub fn m(&self) -> u32 {
        // lint: allow(cast) — worlds are constructed with m: u32 objects, so
        // the length round-trips
        self.values.len() as u32
    }

    /// Number of good objects.
    #[inline]
    pub fn good_count(&self) -> u32 {
        self.good_count
    }

    /// The fraction `β` of good objects.
    #[inline]
    pub fn beta(&self) -> f64 {
        f64::from(self.good_count) / self.values.len() as f64
    }

    /// The object model in force.
    #[inline]
    pub fn model(&self) -> ObjectModel {
        self.model
    }

    /// The true value of `object`.
    ///
    /// # Panics
    /// Panics if `object` is out of range.
    #[inline]
    pub fn value(&self, object: ObjectId) -> f64 {
        self.values[object.index()]
    }

    /// The (publicly known) cost of `object`.
    ///
    /// # Panics
    /// Panics if `object` is out of range.
    #[inline]
    pub fn cost(&self, object: ObjectId) -> f64 {
        self.costs[object.index()]
    }

    /// Ground truth: is `object` good?
    ///
    /// Under local testing a prober learns this; without local testing only
    /// the evaluation harness may consult it.
    ///
    /// # Panics
    /// Panics if `object` is out of range.
    #[inline]
    pub fn is_good(&self, object: ObjectId) -> bool {
        self.good[object.index()]
    }

    /// The ids of all good objects, ascending.
    pub fn good_objects(&self) -> Vec<ObjectId> {
        self.good
            .iter()
            .enumerate()
            .filter(|(_, &g)| g)
            // lint: allow(cast) — index ranges over the world's m: u32 objects
            .map(|(i, _)| ObjectId(i as u32))
            .collect()
    }

    /// The ids of all bad objects, ascending.
    pub fn bad_objects(&self) -> Vec<ObjectId> {
        self.good
            .iter()
            .enumerate()
            .filter(|(_, &g)| !g)
            // lint: allow(cast) — index ranges over the world's m: u32 objects
            .map(|(i, _)| ObjectId(i as u32))
            .collect()
    }

    /// Probes `object`: returns its value and charges its cost.
    ///
    /// # Panics
    /// Panics if `object` is out of range.
    pub fn probe(&self, object: ObjectId) -> Probe {
        Probe {
            object,
            value: self.values[object.index()],
            cost: self.costs[object.index()],
        }
    }

    /// The ids of objects whose cost lies in `[2^i, 2^{i+1})` — Theorem 12's
    /// cost class `i`.
    pub fn cost_class_members(&self, class: u32) -> Vec<ObjectId> {
        let lo = (2u64.pow(class)) as f64;
        let hi = (2u64.pow(class + 1)) as f64;
        self.costs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= lo && c < hi)
            // lint: allow(cast) — index ranges over the world's m: u32 objects
            .map(|(i, _)| ObjectId(i as u32))
            .collect()
    }

    /// The largest cost-class index with at least one member, if costs ≥ 1.
    pub fn max_cost_class(&self) -> u32 {
        self.costs
            .iter()
            // lint: allow(cast) — floor(log2) of a finite f64 ≥ 1 lies in
            // [0, 1024), well inside u32
            .map(|&c| if c >= 1.0 { c.log2().floor() as u32 } else { 0 })
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "World(m={}, good={}, beta={:.4}, model={})",
            self.m(),
            self.good_count,
            self.beta(),
            self.model
        )
    }
}

/// How generated object values are distributed (used by
/// [`WorldBuilder::value_distribution`] for top-β worlds; local-testing
/// worlds are binary by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDistribution {
    /// i.i.d. `U[0, 1)` — the default.
    Uniform,
    /// Pareto with minimum 1 and the given shape (heavy tail — a few objects
    /// are much better than the rest, the realistic marketplace shape).
    ///
    /// Smaller shapes mean heavier tails; shape must be positive.
    Pareto {
        /// Tail index, > 0.
        shape: f64,
    },
    /// Exponential with the given rate (> 0).
    Exponential {
        /// Rate parameter λ.
        rate: f64,
    },
}

impl ValueDistribution {
    fn sample(self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen();
        match self {
            ValueDistribution::Uniform => u,
            ValueDistribution::Pareto { shape } => (1.0 - u).powf(-1.0 / shape),
            ValueDistribution::Exponential { rate } => -(1.0 - u).ln() / rate,
        }
    }

    fn validate(self) -> Result<(), SimError> {
        match self {
            ValueDistribution::Uniform => Ok(()),
            ValueDistribution::Pareto { shape } if shape > 0.0 && shape.is_finite() => Ok(()),
            ValueDistribution::Exponential { rate } if rate > 0.0 && rate.is_finite() => Ok(()),
            other => Err(SimError::InvalidWorld(format!(
                "invalid value distribution parameters: {other:?}"
            ))),
        }
    }
}

/// Builder for [`World`] (C-BUILDER), covering layouts the shorthand
/// constructors do not.
///
/// ```
/// use distill_sim::{ObjectModel, WorldBuilder};
/// # fn main() -> Result<(), distill_sim::SimError> {
/// let world = WorldBuilder::new(100)
///     .seed(7)
///     .good_objects(5)
///     .model(ObjectModel::LocalTesting { threshold: 0.5 })
///     .build()?;
/// assert_eq!(world.m(), 100);
/// assert_eq!(world.good_count(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    m: u32,
    n_good: u32,
    seed: u64,
    model: ObjectModel,
    costs: Option<Vec<f64>>,
    values: Option<Vec<f64>>,
    dist: ValueDistribution,
}

impl WorldBuilder {
    /// Starts a builder for a world of `m` objects. Defaults: one good
    /// object, unit costs, binary values, local testing at threshold 0.5,
    /// seed 0.
    pub fn new(m: u32) -> Self {
        WorldBuilder {
            m,
            n_good: 1,
            seed: 0,
            model: ObjectModel::LocalTesting { threshold: 0.5 },
            costs: None,
            values: None,
            dist: ValueDistribution::Uniform,
        }
    }

    /// Sets the number of good objects (placed uniformly at random).
    pub fn good_objects(mut self, n_good: u32) -> Self {
        self.n_good = n_good;
        self
    }

    /// Sets the world-generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the object model.
    pub fn model(mut self, model: ObjectModel) -> Self {
        self.model = model;
        self
    }

    /// Uses explicit per-object costs instead of unit costs.
    pub fn costs(mut self, costs: Vec<f64>) -> Self {
        self.costs = Some(costs);
        self
    }

    /// Uses explicit per-object values instead of generated ones. With
    /// explicit values, `good_objects` is ignored — goodness comes from the
    /// model.
    pub fn values(mut self, values: Vec<f64>) -> Self {
        self.values = Some(values);
        self
    }

    /// Sets the generated-value distribution for top-β worlds (ignored for
    /// local-testing worlds, which are binary, and when explicit values are
    /// supplied).
    pub fn value_distribution(mut self, dist: ValueDistribution) -> Self {
        self.dist = dist;
        self
    }

    /// Builds the world.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidWorld`] on inconsistent inputs (see
    /// [`World::from_parts`]).
    pub fn build(self) -> Result<World, SimError> {
        let m = self.m as usize;
        let costs = self.costs.unwrap_or_else(|| vec![1.0; m]);
        let values = match self.values {
            Some(v) => v,
            None => match self.model {
                ObjectModel::LocalTesting { threshold } => {
                    if self.n_good == 0 || self.n_good > self.m {
                        return Err(SimError::InvalidWorld(format!(
                            "n_good {} must be in 1..={}",
                            self.n_good, self.m
                        )));
                    }
                    let mut rng = stream_rng(self.seed, Stream::World);
                    let mut ids: Vec<usize> = (0..m).collect();
                    ids.shuffle(&mut rng);
                    let mut values = vec![0.0; m];
                    for &i in ids.iter().take(self.n_good as usize) {
                        values[i] = threshold.max(1.0);
                    }
                    values
                }
                ObjectModel::TopBeta { .. } => {
                    self.dist.validate()?;
                    let mut rng = stream_rng(self.seed, Stream::World);
                    (0..m).map(|_| self.dist.sample(&mut rng)).collect()
                }
            },
        };
        World::from_parts(values, costs, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_world_counts() {
        let w = World::binary(100, 10, 1).unwrap();
        assert_eq!(w.m(), 100);
        assert_eq!(w.good_count(), 10);
        assert!((w.beta() - 0.1).abs() < 1e-12);
        assert_eq!(w.good_objects().len(), 10);
        assert_eq!(w.bad_objects().len(), 90);
        for o in w.good_objects() {
            assert!(w.is_good(o));
            assert_eq!(w.value(o), 1.0);
            assert_eq!(w.cost(o), 1.0);
        }
    }

    #[test]
    fn binary_world_is_seed_deterministic() {
        let a = World::binary(50, 5, 9).unwrap();
        let b = World::binary(50, 5, 9).unwrap();
        assert_eq!(a.good_objects(), b.good_objects());
        let c = World::binary(50, 5, 10).unwrap();
        // overwhelmingly likely to differ
        assert_ne!(a.good_objects(), c.good_objects());
    }

    #[test]
    fn binary_world_rejects_degenerate() {
        assert!(World::binary(10, 0, 0).is_err());
        assert!(World::binary(10, 11, 0).is_err());
    }

    #[test]
    fn top_beta_selects_top_values() {
        let w = World::from_parts(
            vec![0.1, 0.9, 0.5, 0.7],
            vec![1.0; 4],
            ObjectModel::TopBeta { beta: 0.5 },
        )
        .unwrap();
        assert_eq!(w.good_objects(), vec![ObjectId(1), ObjectId(3)]);
        assert_eq!(w.good_count(), 2);
    }

    #[test]
    fn top_beta_tie_break_is_lower_id() {
        let w = World::from_parts(
            vec![0.5, 0.5, 0.5],
            vec![1.0; 3],
            ObjectModel::TopBeta { beta: 1.0 / 3.0 },
        )
        .unwrap();
        assert_eq!(w.good_objects(), vec![ObjectId(0)]);
    }

    #[test]
    fn uniform_top_beta_has_ceil_beta_m_goods() {
        let w = World::uniform_top_beta(97, 0.1, 3).unwrap();
        assert_eq!(w.good_count(), 10); // ceil(9.7)
        assert!(!w.model().has_local_testing());
    }

    #[test]
    fn from_parts_validation() {
        let lt = ObjectModel::LocalTesting { threshold: 0.5 };
        assert!(World::from_parts(vec![], vec![], lt).is_err());
        assert!(World::from_parts(vec![1.0], vec![1.0, 2.0], lt).is_err());
        assert!(World::from_parts(vec![f64::NAN], vec![1.0], lt).is_err());
        assert!(World::from_parts(vec![-1.0], vec![1.0], lt).is_err());
        // all-bad world rejected
        assert!(World::from_parts(vec![0.0, 0.0], vec![1.0, 1.0], lt).is_err());
        assert!(
            World::from_parts(vec![1.0], vec![1.0], ObjectModel::TopBeta { beta: 0.0 }).is_err()
        );
    }

    #[test]
    fn cost_classes_layout() {
        let w = World::cost_classes(&[4, 4, 4], 2, 2, 5).unwrap();
        assert_eq!(w.m(), 12);
        assert_eq!(w.good_count(), 2);
        assert_eq!(w.cost_class_members(0).len(), 4);
        assert_eq!(w.cost_class_members(1).len(), 4);
        assert_eq!(w.cost_class_members(2).len(), 4);
        assert_eq!(w.max_cost_class(), 2);
        for o in w.good_objects() {
            assert_eq!(w.cost(o), 4.0, "good objects live in class 2");
        }
    }

    #[test]
    fn cost_classes_validation() {
        assert!(World::cost_classes(&[], 0, 1, 0).is_err());
        assert!(World::cost_classes(&[0, 0], 0, 1, 0).is_err());
        assert!(World::cost_classes(&[4], 1, 1, 0).is_err());
        assert!(World::cost_classes(&[4], 0, 5, 0).is_err());
    }

    #[test]
    fn probe_returns_truth() {
        let w = World::binary(10, 1, 2).unwrap();
        let good = w.good_objects()[0];
        let p = w.probe(good);
        assert_eq!(p.value, 1.0);
        assert_eq!(p.cost, 1.0);
        assert_eq!(p.object, good);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let w = WorldBuilder::new(20)
            .seed(4)
            .good_objects(3)
            .build()
            .unwrap();
        assert_eq!(w.good_count(), 3);
        let w = WorldBuilder::new(3)
            .values(vec![0.0, 1.0, 0.0])
            .costs(vec![1.0, 2.0, 4.0])
            .build()
            .unwrap();
        assert_eq!(w.good_objects(), vec![ObjectId(1)]);
        assert_eq!(w.cost(ObjectId(2)), 4.0);
        assert!(WorldBuilder::new(5).good_objects(0).build().is_err());
    }

    #[test]
    fn display_nonempty() {
        let w = World::binary(10, 1, 0).unwrap();
        assert!(w.to_string().contains("m=10"));
    }

    #[test]
    fn value_distributions_generate_valid_worlds() {
        for dist in [
            ValueDistribution::Uniform,
            ValueDistribution::Pareto { shape: 1.5 },
            ValueDistribution::Exponential { rate: 2.0 },
        ] {
            let w = WorldBuilder::new(200)
                .model(ObjectModel::TopBeta { beta: 0.1 })
                .value_distribution(dist)
                .seed(3)
                .build()
                .unwrap();
            assert_eq!(w.good_count(), 20);
            // values finite and non-negative for all distributions
            for o in 0..200u32 {
                let v = w.value(ObjectId(o));
                assert!(v.is_finite() && v >= 0.0, "bad value {v} under {dist:?}");
            }
        }
    }

    #[test]
    fn pareto_is_heavier_tailed_than_uniform() {
        let top_share = |dist| {
            let w = WorldBuilder::new(1000)
                .model(ObjectModel::TopBeta { beta: 0.01 })
                .value_distribution(dist)
                .seed(8)
                .build()
                .unwrap();
            let total: f64 = (0..1000u32).map(|o| w.value(ObjectId(o))).sum();
            let top: f64 = w.good_objects().iter().map(|&o| w.value(o)).sum();
            top / total
        };
        assert!(
            top_share(ValueDistribution::Pareto { shape: 1.1 })
                > top_share(ValueDistribution::Uniform),
            "pareto's top percent must hold a larger value share"
        );
    }

    #[test]
    fn bad_distribution_parameters_rejected() {
        for dist in [
            ValueDistribution::Pareto { shape: 0.0 },
            ValueDistribution::Exponential { rate: -1.0 },
            ValueDistribution::Pareto { shape: f64::NAN },
        ] {
            let r = WorldBuilder::new(10)
                .model(ObjectModel::TopBeta { beta: 0.5 })
                .value_distribution(dist)
                .build();
            assert!(r.is_err(), "{dist:?} must be rejected");
        }
    }
}
