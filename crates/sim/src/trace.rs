//! Optional per-event execution trace.

use distill_billboard::{ObjectId, PlayerId, Round};

/// One event in the (optional) execution trace.
///
/// Traces are intended for debugging and fine-grained tests; they grow as
/// `O(n · rounds)` and are off by default
/// ([`SimConfig::record_trace`](crate::SimConfig)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A round began.
    RoundStart {
        /// The round.
        round: Round,
        /// Honest players still active at its start.
        active_honest: u32,
    },
    /// An honest player probed an object.
    Probe {
        /// The round.
        round: Round,
        /// The prober.
        player: PlayerId,
        /// The probed object.
        object: ObjectId,
        /// Whether the probe followed another player's vote.
        via_advice: bool,
        /// Ground-truth goodness of the probed object.
        good: bool,
    },
    /// An honest player became satisfied.
    Satisfied {
        /// The round.
        round: Round,
        /// The player.
        player: PlayerId,
        /// The good object it found.
        object: ObjectId,
    },
    /// The adversary posted.
    AdversaryPosts {
        /// The round.
        round: Round,
        /// Number of posts it made.
        count: u32,
    },
    /// Fault injection suppressed an honest post before it reached the
    /// billboard (the probe still happened and counted).
    PostDropped {
        /// The round.
        round: Round,
        /// The author whose post was lost.
        player: PlayerId,
        /// The object the lost post reported on.
        object: ObjectId,
    },
    /// Fault injection crash-stopped an honest player.
    PlayerCrashed {
        /// The round.
        round: Round,
        /// The crashed player.
        player: PlayerId,
    },
    /// A crashed player recovered and rejoined (pre-crash votes intact).
    PlayerRecovered {
        /// The round.
        round: Round,
        /// The recovered player.
        player: PlayerId,
    },
}

/// Aggregate statistics over a recorded trace.
///
/// Computed by [`summarize`]; used by tests and post-hoc analysis to answer
/// questions the per-run metrics do not retain (e.g. the advice fraction per
/// phase of the run).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Rounds observed.
    pub rounds: u64,
    /// Total honest probes.
    pub probes: u64,
    /// Probes that followed another player's vote.
    pub advice_probes: u64,
    /// Probes that hit a good object.
    pub good_hits: u64,
    /// Satisfaction events.
    pub satisfactions: u64,
    /// Total adversary posts.
    pub adversary_posts: u64,
    /// Honest posts dropped by fault injection.
    pub posts_dropped: u64,
    /// Crash events.
    pub crashes: u64,
    /// Recovery events.
    pub recoveries: u64,
    /// Honest probes per round, averaged.
    pub mean_probes_per_round: f64,
}

impl TraceSummary {
    /// Fraction of probes that were advice probes.
    pub fn advice_fraction(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.advice_probes as f64 / self.probes as f64
        }
    }
}

/// Summarizes a trace recorded with
/// [`SimConfig::with_trace`](crate::SimConfig::with_trace).
pub fn summarize(trace: &[TraceEvent]) -> TraceSummary {
    let mut s = TraceSummary {
        rounds: 0,
        probes: 0,
        advice_probes: 0,
        good_hits: 0,
        satisfactions: 0,
        adversary_posts: 0,
        posts_dropped: 0,
        crashes: 0,
        recoveries: 0,
        mean_probes_per_round: 0.0,
    };
    for event in trace {
        match *event {
            TraceEvent::RoundStart { .. } => s.rounds += 1,
            TraceEvent::Probe {
                via_advice, good, ..
            } => {
                s.probes += 1;
                if via_advice {
                    s.advice_probes += 1;
                }
                if good {
                    s.good_hits += 1;
                }
            }
            TraceEvent::Satisfied { .. } => s.satisfactions += 1,
            TraceEvent::AdversaryPosts { count, .. } => s.adversary_posts += u64::from(count),
            TraceEvent::PostDropped { .. } => s.posts_dropped += 1,
            TraceEvent::PlayerCrashed { .. } => s.crashes += 1,
            TraceEvent::PlayerRecovered { .. } => s.recoveries += 1,
        }
    }
    s.mean_probes_per_round = if s.rounds == 0 {
        0.0
    } else {
        s.probes as f64 / s.rounds as f64
    };
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_all_kinds() {
        let trace = vec![
            TraceEvent::RoundStart {
                round: Round(0),
                active_honest: 2,
            },
            TraceEvent::Probe {
                round: Round(0),
                player: PlayerId(0),
                object: ObjectId(1),
                via_advice: false,
                good: false,
            },
            TraceEvent::Probe {
                round: Round(0),
                player: PlayerId(1),
                object: ObjectId(2),
                via_advice: true,
                good: true,
            },
            TraceEvent::Satisfied {
                round: Round(0),
                player: PlayerId(1),
                object: ObjectId(2),
            },
            TraceEvent::AdversaryPosts {
                round: Round(0),
                count: 3,
            },
            TraceEvent::RoundStart {
                round: Round(1),
                active_honest: 1,
            },
            TraceEvent::Probe {
                round: Round(1),
                player: PlayerId(0),
                object: ObjectId(2),
                via_advice: true,
                good: true,
            },
            TraceEvent::Satisfied {
                round: Round(1),
                player: PlayerId(0),
                object: ObjectId(2),
            },
            TraceEvent::PostDropped {
                round: Round(1),
                player: PlayerId(0),
                object: ObjectId(2),
            },
            TraceEvent::PlayerCrashed {
                round: Round(1),
                player: PlayerId(1),
            },
            TraceEvent::PlayerRecovered {
                round: Round(1),
                player: PlayerId(1),
            },
        ];
        let s = summarize(&trace);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.probes, 3);
        assert_eq!(s.advice_probes, 2);
        assert_eq!(s.good_hits, 2);
        assert_eq!(s.satisfactions, 2);
        assert_eq!(s.adversary_posts, 3);
        assert_eq!(s.posts_dropped, 1);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.recoveries, 1);
        assert!((s.advice_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_probes_per_round - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&[]);
        assert_eq!(s.rounds, 0);
        assert_eq!(s.advice_fraction(), 0.0);
        assert_eq!(s.mean_probes_per_round, 0.0);
    }

    /// Regression: rounds without a single probe (e.g. every player crashed
    /// or idle) must report a 0.0 advice fraction, not NaN from 0/0.
    #[test]
    fn probeless_rounds_keep_advice_fraction_finite() {
        let trace = vec![
            TraceEvent::RoundStart {
                round: Round(0),
                active_honest: 0,
            },
            TraceEvent::RoundStart {
                round: Round(1),
                active_honest: 0,
            },
            TraceEvent::PlayerCrashed {
                round: Round(1),
                player: PlayerId(0),
            },
        ];
        let s = summarize(&trace);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.probes, 0);
        assert_eq!(s.advice_fraction(), 0.0);
        assert!(s.advice_fraction().is_finite());
        assert_eq!(s.mean_probes_per_round, 0.0);
    }

    #[test]
    fn trace_events_compare() {
        let a = TraceEvent::RoundStart {
            round: Round(0),
            active_honest: 3,
        };
        assert_eq!(
            a,
            TraceEvent::RoundStart {
                round: Round(0),
                active_honest: 3
            }
        );
        let b = TraceEvent::Satisfied {
            round: Round(2),
            player: PlayerId(1),
            object: ObjectId(0),
        };
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }
}
