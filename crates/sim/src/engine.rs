//! The synchronous round loop.

use crate::adversary::{Adversary, AdversaryCtx, InfoModel};
use crate::cohort::{Cohort, Directive};
use crate::config::{SimConfig, StopRule};
use crate::error::SimError;
use crate::faults::{FaultCounters, FaultPlan};
use crate::metrics::{FinalEval, PlayerOutcome, SimResult};
use crate::object_model::ObjectModel;
use crate::rng::{stream_rng, Stream};
use crate::trace::TraceEvent;
use crate::world::World;
use distill_billboard::{
    Billboard, BitSet, BoardView, ObjectId, PlayerId, ReportKind, Round, VoteMode, VoteTracker,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// A pending honest probe, resolved against the start-of-round view.
#[derive(Clone, Copy)]
struct HonestProbe {
    player: PlayerId,
    object: ObjectId,
    via_advice: bool,
}

/// The synchronous execution engine (§1.2, §2.1).
///
/// One `Engine` runs one execution: in every round each *active* honest
/// player resolves the cohort's [`Directive`] with its own private coins,
/// probes one object, and posts the result; the adversary then posts whatever
/// it likes through its own players; the round's posts land on the billboard
/// and the vote tracker ingests them. A player that probes a good object
/// (under local testing) becomes *satisfied* and halts.
///
/// Ordering per round `r`:
///
/// 1. the cohort reads the end-of-round-`r−1` billboard and emits this
///    round's directive;
/// 2. honest probes are resolved against the same view (synchronous model —
///    everyone acts on the same snapshot);
/// 3. the adversary acts: under [`InfoModel::StronglyAdaptive`] it first sees
///    the honest round-`r` posts; otherwise it sees only rounds `< r`;
/// 4. all round-`r` posts are appended and ingested.
///
/// When the config carries a non-noop [`FaultPlan`], the engine additionally
/// processes crash/recovery churn at each round start, serves honest reads
/// from a lagged view, and may drop honest posts — all driven by the
/// dedicated [`Stream::Faults`] RNG, so the no-fault path is bit-identical
/// to an engine without the fault layer.
pub struct Engine<'w> {
    config: SimConfig,
    world: &'w World,
    cohort: Box<dyn Cohort>,
    adversary: Box<dyn Adversary>,
    board: Billboard,
    tracker: VoteTracker,
    /// Satisfaction flags, one bit per honest player (struct-of-arrays: the
    /// flag planes are packed `u64` bitmaps, the hot per-player payloads live
    /// in their own dense arrays).
    satisfied: BitSet,
    /// Running count of set bits in `satisfied` — keeps the stop rules and
    /// the per-round satisfaction curve O(1) instead of an O(n) rescan.
    n_satisfied: u32,
    /// Unsatisfied honest players, ascending. Ascending order matters: it is
    /// the board append order, which advice probes observe.
    active_players: Vec<u32>,
    outcomes: Vec<PlayerOutcome>,
    /// Best value seen per player — only consulted by the no-local-testing
    /// final evaluation, so it is left empty (never touched in the round
    /// loop) for local-testing worlds.
    best_probe: Vec<Option<(ObjectId, f64)>>,
    player_rngs: Vec<SmallRng>,
    adv_rng: SmallRng,
    dishonest: Vec<PlayerId>,
    satisfied_per_round: Vec<u32>,
    forged_rejected: u64,
    trace: Option<Vec<TraceEvent>>,
    round: Round,
    rounds_executed: u64,
    /// Reused across rounds to avoid a per-round allocation.
    probe_buf: Vec<HonestProbe>,
    /// Start of the tally window currently registered with the tracker
    /// (mirrors the cohort's `PhaseInfo::window_start`).
    open_window_start: Option<Round>,
    /// Fault-injection coins (dedicated stream; never touched by the
    /// no-fault path).
    faults_rng: SmallRng,
    /// Predetermined crash events `(round, player)`, sorted ascending; the
    /// cursor marks the first event that has not fired yet. Each event fires
    /// exactly once, so churn costs O(crashed + due) per round instead of an
    /// O(n) schedule rescan.
    crash_events: Vec<(u64, u32)>,
    crash_cursor: usize,
    /// Whether each honest player is currently crashed (bitmap plane).
    crashed: BitSet,
    /// Currently-crashed players, ascending — the recovery-coin draw order.
    crashed_list: Vec<u32>,
    /// Reused per-round output buffer for rebuilding `crashed_list`.
    churn_scratch: Vec<u32>,
    /// Crashed players that are not satisfied — with recovery disabled these
    /// are terminal, and the all-satisfied stop rule treats them as such.
    n_crashed_unsatisfied: u32,
    fault_counters: FaultCounters,
    /// Vote state as seen by a reader `view_lag` rounds behind; `None` when
    /// reads are fresh. Fed exclusively through `ingest_until`.
    lagged_tracker: Option<VoteTracker>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("round", &self.round)
            .field("cohort", &self.cohort.name())
            .field("adversary", &self.adversary.name())
            .field("satisfied", &self.satisfied_count())
            .finish()
    }
}

impl<'w> Engine<'w> {
    /// Builds an engine for one execution.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the config fails
    /// [`SimConfig::validate`], if the vote policy's mode disagrees with the
    /// world's object model (local-testing worlds need local-testing votes,
    /// top-β worlds need best-value votes and a [`StopRule::Horizon`]), or if
    /// a pre-satisfied player's seeded vote is not actually a good object.
    pub fn new(
        config: SimConfig,
        world: &'w World,
        cohort: Box<dyn Cohort>,
        adversary: Box<dyn Adversary>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        match (world.model(), config.policy.mode) {
            (ObjectModel::LocalTesting { .. }, VoteMode::LocalTesting) => {}
            (ObjectModel::TopBeta { .. }, VoteMode::BestValue) => {
                if !matches!(config.stop, StopRule::Horizon { .. }) {
                    return Err(SimError::InvalidConfig(
                        "a top-beta world needs a fixed horizon: players cannot detect \
                         satisfaction without local testing (§5.3)"
                            .into(),
                    ));
                }
            }
            (model, mode) => {
                return Err(SimError::InvalidConfig(format!(
                    "object model {model} is incompatible with vote mode {mode:?}"
                )));
            }
        }
        for &(p, o) in &config.pre_satisfied {
            if p.0 >= config.n_honest {
                return Err(SimError::InvalidConfig(format!(
                    "pre-satisfied player {p} out of range (honest players are p0..p{})",
                    config.n_honest
                )));
            }
            if o.0 >= world.m() {
                return Err(SimError::InvalidConfig(format!(
                    "pre-satisfied vote {o} out of range"
                )));
            }
            if !world.is_good(o) {
                return Err(SimError::InvalidConfig(format!(
                    "pre-satisfied player {p} holds vote for bad object {o}; honest votes are \
                     truthful"
                )));
            }
        }

        let n = config.n_players;
        let m = world.m();
        let mut board = Billboard::new(n, m);
        let mut tracker = VoteTracker::new(n, m, config.policy);
        let n_honest = config.n_honest as usize;
        let mut satisfied = BitSet::new(n_honest);
        let mut outcomes = vec![PlayerOutcome::new(); n_honest];
        let mut round = Round(0);

        if !config.pre_satisfied.is_empty() {
            for &(p, o) in &config.pre_satisfied {
                board.append(Round(0), p, o, world.value(o), ReportKind::Positive)?;
                satisfied.insert(p.index());
                outcomes[p.index()].satisfied_round = Some(Round(0));
            }
            tracker.ingest(&board);
            round = Round(1);
        }

        let player_rngs = (0..config.n_honest)
            .map(|p| stream_rng(config.seed, Stream::Player(p)))
            .collect();
        let adv_rng = stream_rng(config.seed, Stream::Adversary);
        let mut faults_rng = stream_rng(config.seed, Stream::Faults);
        let mut crash_events = Vec::new();
        Self::draw_crash_schedule(
            &config.faults,
            &mut faults_rng,
            &mut crash_events,
            config.n_honest,
        );
        let lagged_tracker =
            (config.faults.view_lag > 0).then(|| VoteTracker::new(n, m, config.policy));
        let dishonest = config.dishonest_players();
        let trace = config.record_trace.then(Vec::new);
        // lint: allow(cast) — count_ones over an n_honest-bit set, and
        // n_honest is u32 by the id-space contract
        let n_satisfied = satisfied.count_ones() as u32;
        let active_players: Vec<u32> = (0..config.n_honest)
            .filter(|&p| !satisfied.contains(p as usize))
            .collect();
        let curve_capacity = if config.record_satisfaction_curve {
            Self::curve_capacity(&config.stop)
        } else {
            0
        };
        let best_probe = if world.model().has_local_testing() {
            Vec::new()
        } else {
            vec![None; n_honest]
        };

        Ok(Engine {
            config,
            world,
            cohort,
            adversary,
            board,
            tracker,
            satisfied,
            n_satisfied,
            active_players,
            outcomes,
            best_probe,
            player_rngs,
            adv_rng,
            dishonest,
            satisfied_per_round: Vec::with_capacity(curve_capacity),
            forged_rejected: 0,
            trace,
            round,
            rounds_executed: 0,
            probe_buf: Vec::with_capacity(n_honest),
            open_window_start: None,
            faults_rng,
            crash_events,
            crash_cursor: 0,
            crashed: BitSet::new(n_honest),
            crashed_list: Vec::new(),
            churn_scratch: Vec::new(),
            n_crashed_unsatisfied: 0,
            fault_counters: FaultCounters::default(),
            lagged_tracker,
        })
    }

    /// Fills `out` with the predetermined crash events, one per player that
    /// will ever crash, sorted by `(round, player)`. Coins are drawn in
    /// ascending player order (the deterministic draw sequence: one coin per
    /// player, plus a round draw only for crashers). `crash_rate` is the
    /// probability of ever crashing; the crash round is uniform over
    /// `[0, crash_window)`, which is what makes the effective honest fraction
    /// α′ = α·(1 − crash_rate) once the window has passed.
    fn draw_crash_schedule(
        plan: &FaultPlan,
        rng: &mut SmallRng,
        out: &mut Vec<(u64, u32)>,
        n_honest: u32,
    ) {
        out.clear();
        if plan.crash_rate <= 0.0 {
            return;
        }
        for p in 0..n_honest {
            if rng.gen::<f64>() < plan.crash_rate {
                out.push((rng.gen_range(0..plan.crash_window), p));
            }
        }
        out.sort_unstable();
    }

    /// Capacity reserved up front for the per-round satisfaction curve, so a
    /// steady-state round's `push` never reallocates. Bounded so degenerate
    /// round caps don't pre-allocate megabytes; runs longer than the bound
    /// fall back to amortized growth.
    fn curve_capacity(stop: &StopRule) -> usize {
        const CURVE_RESERVE_CAP: usize = 4096;
        usize::try_from(stop.round_cap())
            .unwrap_or(CURVE_RESERVE_CAP)
            .min(CURVE_RESERVE_CAP)
    }

    /// The current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Number of satisfied honest players so far. O(1): maintained as a
    /// running counter rather than rescanning the satisfaction flags.
    pub fn satisfied_count(&self) -> usize {
        debug_assert_eq!(
            self.n_satisfied as usize,
            self.satisfied.count_ones(),
            "running satisfied counter diverged from the bitmap popcount"
        );
        self.n_satisfied as usize
    }

    /// The billboard (read-only).
    pub fn board(&self) -> &Billboard {
        &self.board
    }

    /// The vote tracker (read-only).
    pub fn tracker(&self) -> &VoteTracker {
        &self.tracker
    }

    fn should_stop(&self) -> bool {
        match self.config.stop {
            StopRule::AllSatisfied { max_rounds } => {
                // A crashed player with recovery disabled can never probe
                // again: treating it as terminal is what lets crash-stop
                // runs finish instead of spinning to the round cap. Without
                // faults `n_crashed_unsatisfied` is always 0, so the rule is
                // unchanged.
                let terminal = if self.config.faults.recovery_rate == 0.0 {
                    self.n_satisfied + self.n_crashed_unsatisfied
                } else {
                    self.n_satisfied
                };
                terminal == self.config.n_honest || self.rounds_executed >= max_rounds
            }
            StopRule::Horizon { rounds } => self.rounds_executed >= rounds,
            StopRule::AnySatisfied { max_rounds } => {
                self.n_satisfied > 0 || self.rounds_executed >= max_rounds
            }
        }
    }

    /// Runs the execution to completion and returns the measurements.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidDirective`] if the cohort emits a directive
    /// the engine cannot execute (e.g. a candidate set naming an object
    /// outside the universe), or [`SimError::Billboard`] if a post violates
    /// the billboard's append discipline (an engine bug guard).
    pub fn run(mut self) -> Result<SimResult, SimError> {
        self.run_mut()
    }

    /// [`run`](Engine::run) by mutable reference: runs the execution to
    /// completion and drains the measurements out of the engine, leaving the
    /// arena (board, tracker, per-player buffers) allocated for reuse.
    ///
    /// After this returns the engine is *spent* — call
    /// [`reset`](Engine::reset) before running it again.
    ///
    /// # Errors
    /// See [`Engine::run`].
    pub fn run_mut(&mut self) -> Result<SimResult, SimError> {
        while !self.should_stop() {
            self.step()?;
        }
        Ok(self.finalize())
    }

    /// Rewinds the engine to the start of a fresh execution with a new seed,
    /// **reusing every heap buffer** (billboard log, tracker state, probe and
    /// curve buffers, per-player RNG table) instead of reconstructing them.
    ///
    /// The cohort and adversary carry protocol state, so fresh boxes must be
    /// supplied; everything else — config (except the seed) and world — is
    /// kept. The resulting execution is bit-identical to one from a freshly
    /// constructed engine with the same arguments (property-tested in
    /// `tests/engine_props.rs`).
    ///
    /// # Errors
    /// Propagates [`SimError::Billboard`] if re-seeding the pre-satisfied
    /// votes fails (unreachable for a config that passed [`Engine::new`]).
    pub fn reset(
        &mut self,
        seed: u64,
        cohort: Box<dyn Cohort>,
        adversary: Box<dyn Adversary>,
    ) -> Result<(), SimError> {
        self.reset_with_world(seed, self.world, cohort, adversary)
    }

    /// [`reset`](Engine::reset), additionally swapping in a different world
    /// of the same universe size (per-trial worlds in a multi-trial sweep).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if the new world's size or object
    /// model is incompatible with the engine's config, or if a pre-satisfied
    /// vote is not good in the new world.
    pub fn reset_with_world(
        &mut self,
        seed: u64,
        world: &'w World,
        cohort: Box<dyn Cohort>,
        adversary: Box<dyn Adversary>,
    ) -> Result<(), SimError> {
        if world.m() != self.world.m() {
            return Err(SimError::InvalidConfig(format!(
                "reset world has {} objects, engine arena was built for {}",
                world.m(),
                self.world.m()
            )));
        }
        match (world.model(), self.config.policy.mode) {
            (ObjectModel::LocalTesting { .. }, VoteMode::LocalTesting) => {}
            (ObjectModel::TopBeta { .. }, VoteMode::BestValue) => {}
            (model, mode) => {
                return Err(SimError::InvalidConfig(format!(
                    "object model {model} is incompatible with vote mode {mode:?}"
                )));
            }
        }
        for &(p, o) in &self.config.pre_satisfied {
            if !world.is_good(o) {
                return Err(SimError::InvalidConfig(format!(
                    "pre-satisfied player {p} holds vote for bad object {o}; honest votes are \
                     truthful"
                )));
            }
        }

        self.config.seed = seed;
        self.world = world;
        self.cohort = cohort;
        self.adversary = adversary;
        self.board.reset();
        self.tracker.reset();
        let n_honest = self.config.n_honest as usize;
        self.satisfied.reset(n_honest);
        self.outcomes.clear();
        self.outcomes.resize(n_honest, PlayerOutcome::new());
        self.best_probe.clear();
        if !world.model().has_local_testing() {
            self.best_probe.resize(n_honest, None);
        }
        self.round = Round(0);
        if !self.config.pre_satisfied.is_empty() {
            for &(p, o) in &self.config.pre_satisfied {
                self.board
                    .append(Round(0), p, o, world.value(o), ReportKind::Positive)?;
                self.satisfied.insert(p.index());
                self.outcomes[p.index()].satisfied_round = Some(Round(0));
            }
            self.tracker.ingest(&self.board);
            self.round = Round(1);
        }
        for (p, rng) in (0u32..).zip(self.player_rngs.iter_mut()) {
            *rng = stream_rng(seed, Stream::Player(p));
        }
        self.adv_rng = stream_rng(seed, Stream::Adversary);
        self.faults_rng = stream_rng(seed, Stream::Faults);
        Self::draw_crash_schedule(
            &self.config.faults,
            &mut self.faults_rng,
            &mut self.crash_events,
            self.config.n_honest,
        );
        self.crash_cursor = 0;
        self.crashed.reset(n_honest);
        self.crashed_list.clear();
        self.n_crashed_unsatisfied = 0;
        self.fault_counters = FaultCounters::default();
        if let Some(lt) = self.lagged_tracker.as_mut() {
            lt.reset();
        }
        // lint: allow(cast) — count_ones over an n_honest-bit set, and
        // n_honest is u32 by the id-space contract
        self.n_satisfied = self.satisfied.count_ones() as u32;
        let satisfied = &self.satisfied;
        let n_honest_u32 = self.config.n_honest;
        self.active_players.clear();
        self.active_players
            .extend((0..n_honest_u32).filter(|&p| !satisfied.contains(p as usize)));
        self.satisfied_per_round.clear();
        if self.config.record_satisfaction_curve {
            self.satisfied_per_round
                .reserve(Self::curve_capacity(&self.config.stop));
        }
        self.forged_rejected = 0;
        self.trace = self.config.record_trace.then(Vec::new);
        self.rounds_executed = 0;
        self.probe_buf.clear();
        self.open_window_start = None;
        Ok(())
    }

    /// Executes a single round. Public for fine-grained tests.
    ///
    /// # Errors
    /// See [`Engine::run`].
    // lint: hot
    pub fn step(&mut self) -> Result<(), SimError> {
        let round = self.round;
        let n = self.config.n_players;
        let m = self.world.m();

        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent::RoundStart {
                round,
                // lint: allow(cast) — the active list holds at most n_honest
                // (u32) player ids
                active_honest: self.active_players.len() as u32,
            });
        }

        // Fault churn first: crashes and recoveries take effect at the start
        // of the round, before anyone probes.
        let churn = self.config.faults.crash_rate > 0.0;
        if churn {
            self.process_churn(round);
        }

        // Honest reads may lag behind the billboard: bring the lagged vote
        // state up to the visibility cutoff for this round. No posts are
        // uncovered in the steady state, so this is allocation-free there.
        let lag = self.config.faults.view_lag;
        let lag_cutoff = Round(round.as_u64().saturating_sub(lag));
        if lag > 0 {
            if let Some(lt) = self.lagged_tracker.as_mut() {
                lt.ingest_until(&self.board, lag_cutoff);
            }
        }

        // 1+2: cohort directive and honest probe resolution, both against the
        // same snapshot (built once per round): the end-of-previous-round
        // board when reads are fresh, or the stale prefix under view lag.
        self.probe_buf.clear();
        {
            let view = match self.lagged_tracker.as_ref() {
                Some(lt) if lag > 0 => BoardView::new_lagged(&self.board, lt, round, lag_cutoff),
                _ => BoardView::new(&self.board, &self.tracker, round),
            };
            let directive = self.cohort.directive(&view);
            for idx in 0..self.active_players.len() {
                let p = self.active_players[idx];
                if churn && self.crashed.contains(p as usize) {
                    continue;
                }
                let rng = &mut self.player_rngs[p as usize];
                let participates = match self.config.participation {
                    crate::config::Participation::Full => true,
                    crate::config::Participation::RandomSubset { p: prob } => {
                        rng.gen::<f64>() < prob
                    }
                    crate::config::Participation::RoundRobin { groups } => {
                        (round.as_u64() + u64::from(p)) % u64::from(groups) == 0
                    }
                    crate::config::Participation::Straggler {
                        player,
                        until_round,
                    } => player.0 != p || round.as_u64() >= until_round,
                };
                if !participates {
                    continue;
                }
                let resolved = match &directive {
                    Directive::ProbeUniform(set) => Some((set.sample(m, rng), false)),
                    Directive::SeekAdvice { fallback } => {
                        Some(Self::advice_probe(&view, fallback, n, m, rng))
                    }
                    Directive::Mixed { explore, set } => {
                        if rng.gen::<f64>() < *explore {
                            Some((set.sample(m, rng), false))
                        } else {
                            Some(Self::advice_probe(&view, set, n, m, rng))
                        }
                    }
                    Directive::Idle => None,
                };
                if let Some((object, via_advice)) = resolved {
                    // A hostile (or buggy) cohort can hand back a Subset with
                    // out-of-range ids; indexing the world with one would
                    // panic, so reject the directive instead.
                    if object.0 >= m {
                        // lint: allow(alloc) — error path that aborts the
                        // run; never taken on the per-round fast path
                        return Err(SimError::InvalidDirective(format!(
                            "cohort produced object {} outside universe of {m} objects",
                            object.0
                        )));
                    }
                    self.probe_buf.push(HonestProbe {
                        player: PlayerId(p),
                        object,
                        via_advice,
                    });
                }
            }
        }
        let phase = self.cohort.phase_info();

        // Keep the tracker's registered tally window in lock-step with the
        // protocol's: cohorts only hold read-only views, so the engine opens
        // each segment's window on their behalf, making the `ℓ_t(i)` queries
        // at the next segment boundary O(1)/O(result).
        if self.config.register_tally_windows && self.open_window_start != Some(phase.window_start)
        {
            self.tracker.open_window(phase.window_start);
            if let Some(lt) = self.lagged_tracker.as_mut() {
                lt.open_window(phase.window_start);
            }
            self.open_window_start = Some(phase.window_start);
        }

        // 3a: non-strongly-adaptive adversaries act before honest posts land.
        let strongly = self.config.info == InfoModel::StronglyAdaptive;
        let mut adv_posts = if !strongly {
            self.call_adversary(round, &phase)
        } else {
            // lint: allow(alloc) — capacity-0 Vec::new never touches the heap
            Vec::new()
        };

        // 4a: honest posts.
        let local_testing = self.world.model().has_local_testing();
        let mut any_satisfied_this_round = false;
        for idx in 0..self.probe_buf.len() {
            let probe = self.probe_buf[idx];
            let p = probe.player;
            let outcome = &mut self.outcomes[p.index()];
            let value = self.world.value(probe.object);
            let cost = self.world.cost(probe.object);
            outcome.probes += 1;
            outcome.cost_paid += cost;
            if probe.via_advice {
                outcome.advice_probes += 1;
            } else {
                outcome.explore_probes += 1;
            }
            if !local_testing {
                // Only the §5.3 final evaluation reads this; skipping it for
                // local-testing worlds keeps the plane out of the hot loop.
                match self.best_probe[p.index()] {
                    Some((_, best)) if best >= value => {}
                    _ => self.best_probe[p.index()] = Some((probe.object, value)),
                }
            }
            let good = self.world.is_good(probe.object);
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceEvent::Probe {
                    round,
                    player: p,
                    object: probe.object,
                    via_advice: probe.via_advice,
                    good,
                });
            }
            if local_testing {
                let kind = if good {
                    ReportKind::Positive
                } else if self.config.honest_error_rate > 0.0
                    && self.player_rngs[p.index()].gen::<f64>() < self.config.honest_error_rate
                {
                    // §4.1: an honest player occasionally submits an
                    // erroneous (positive) vote for a bad object by mistake.
                    ReportKind::Positive
                } else {
                    ReportKind::Negative
                };
                if kind == ReportKind::Positive || self.config.post_negative_reports {
                    // Fault injection may lose the post in transit; the probe
                    // (and any satisfaction) already happened locally.
                    let dropped = self.config.faults.drop_rate > 0.0
                        && self.faults_rng.gen::<f64>() < self.config.faults.drop_rate;
                    if dropped {
                        self.fault_counters.posts_dropped += 1;
                        if let Some(t) = self.trace.as_mut() {
                            t.push(TraceEvent::PostDropped {
                                round,
                                player: p,
                                object: probe.object,
                            });
                        }
                    } else {
                        self.board.append(round, p, probe.object, value, kind)?;
                    }
                }
                if good {
                    self.satisfied.insert(p.index());
                    self.n_satisfied += 1;
                    any_satisfied_this_round = true;
                    outcome.satisfied_round = Some(round);
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEvent::Satisfied {
                            round,
                            player: p,
                            object: probe.object,
                        });
                    }
                }
            } else {
                // §5.3: no local testing — every probe's true value is
                // posted; the tracker derives best-value votes from it.
                let dropped = self.config.faults.drop_rate > 0.0
                    && self.faults_rng.gen::<f64>() < self.config.faults.drop_rate;
                if dropped {
                    self.fault_counters.posts_dropped += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEvent::PostDropped {
                            round,
                            player: p,
                            object: probe.object,
                        });
                    }
                } else {
                    self.board
                        .append(round, p, probe.object, value, ReportKind::Negative)?;
                }
            }
        }

        // 3b: strongly-adaptive adversaries see the honest posts first.
        if strongly {
            self.tracker.ingest(&self.board);
            adv_posts = self.call_adversary(round, &phase);
        }

        // 4b: adversary posts, with transport-level author validation.
        let mut accepted = 0u32;
        for post in adv_posts {
            let authorized = post.author.0 >= self.config.n_honest
                && post.author.0 < self.config.n_players
                && post.object.0 < m
                && post.value.is_finite();
            if !authorized {
                self.forged_rejected += 1;
                continue;
            }
            self.board
                .append(round, post.author, post.object, post.value, post.kind)?;
            accepted += 1;
        }
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent::AdversaryPosts {
                round,
                count: accepted,
            });
        }

        self.tracker.ingest(&self.board);
        if any_satisfied_this_round {
            let satisfied = &self.satisfied;
            self.active_players
                .retain(|&p| !satisfied.contains(p as usize));
        }
        if self.config.record_satisfaction_curve {
            self.satisfied_per_round.push(self.n_satisfied);
        }
        self.round = round.next();
        self.rounds_executed += 1;
        Ok(())
    }

    /// Applies this round's crash and recovery events (only called when the
    /// fault plan has churn enabled).
    ///
    /// Crashes fire when the player's predetermined crash round is reached
    /// (`<=` so schedules starting before a pre-satisfied run's first round
    /// still fire); each event fires exactly once, so a recovered player
    /// never re-crashes. Recovery is a per-round geometric draw. Satisfied
    /// players can crash too (the machine dies either way) but only
    /// unsatisfied crashes count toward the terminal-player total the stop
    /// rule uses.
    ///
    /// The old flag-array walk cost O(n) per round; this merge walks only the
    /// currently-crashed players (recovery coins, ascending — the exact coin
    /// draw order of the old loop, which drew coins *only* for crashed
    /// players) interleaved with the due crash events in player order, so the
    /// trace and counter sequence is bit-identical at O(crashed + due).
    // lint: hot
    fn process_churn(&mut self, round: Round) {
        let recovery = self.config.faults.recovery_rate;
        let start = self.crash_cursor;
        let mut end = start;
        while end < self.crash_events.len() && self.crash_events[end].0 <= round.as_u64() {
            end += 1;
        }
        self.crash_cursor = end;
        if end - start > 1 {
            // A batch from a single round is already player-sorted; one that
            // spans several rounds (possible only on the first churn of a
            // pre-seeded run, which starts past round 0) needs the player
            // order restored.
            self.crash_events[start..end].sort_unstable_by_key(|&(_, p)| p);
        }
        if end == start && self.crashed_list.is_empty() {
            return;
        }
        let mut next_list = std::mem::take(&mut self.churn_scratch);
        next_list.clear();
        let mut ci = 0;
        let mut di = start;
        loop {
            let next_crashed = self.crashed_list.get(ci).copied();
            let next_due = (di < end).then(|| self.crash_events[di].1);
            let crash_now = match (next_crashed, next_due) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(c), Some(d)) => d < c,
            };
            if crash_now {
                let p = self.crash_events[di].1;
                di += 1;
                self.crashed.insert(p as usize);
                if !self.satisfied.contains(p as usize) {
                    self.n_crashed_unsatisfied += 1;
                }
                self.fault_counters.crashes += 1;
                if self.outcomes[p as usize].crash_round.is_none() {
                    self.outcomes[p as usize].crash_round = Some(round);
                }
                if let Some(t) = self.trace.as_mut() {
                    t.push(TraceEvent::PlayerCrashed {
                        round,
                        player: PlayerId(p),
                    });
                }
                next_list.push(p);
            } else {
                let p = self.crashed_list[ci];
                ci += 1;
                if recovery > 0.0 && self.faults_rng.gen::<f64>() < recovery {
                    self.crashed.remove(p as usize);
                    if !self.satisfied.contains(p as usize) {
                        self.n_crashed_unsatisfied -= 1;
                    }
                    self.fault_counters.recoveries += 1;
                    if let Some(t) = self.trace.as_mut() {
                        t.push(TraceEvent::PlayerRecovered {
                            round,
                            player: PlayerId(p),
                        });
                    }
                } else {
                    next_list.push(p);
                }
            }
        }
        std::mem::swap(&mut self.crashed_list, &mut next_list);
        self.churn_scratch = next_list;
    }

    fn advice_probe(
        view: &BoardView<'_>,
        fallback: &crate::cohort::CandidateSet,
        n: u32,
        m: u32,
        rng: &mut SmallRng,
    ) -> (ObjectId, bool) {
        // "Pick a random player j, and probe the object j votes for, if
        // exists." — j ranges over all n players, honest or not.
        let j = PlayerId(rng.gen_range(0..n));
        let votes = view.votes_of(j);
        if votes.is_empty() {
            (fallback.sample(m, rng), false)
        } else {
            let pick = rng.gen_range(0..votes.len());
            (votes[pick].object, true)
        }
    }

    fn call_adversary(
        &mut self,
        round: Round,
        phase: &crate::cohort::PhaseInfo,
    ) -> Vec<crate::adversary::DishonestPost> {
        let view = BoardView::new(&self.board, &self.tracker, round);
        let mut ctx = AdversaryCtx {
            round,
            view: &view,
            dishonest: &self.dishonest,
            phase,
            world: self.world,
            info: self.config.info,
            rng: &mut self.adv_rng,
        };
        self.adversary.on_round(&mut ctx)
    }

    /// Drains the measurements into a [`SimResult`]. Buffers that escape into
    /// the result (`outcomes`, `satisfied_per_round`, `trace`) are taken;
    /// [`reset`](Engine::reset) re-establishes them.
    fn finalize(&mut self) -> SimResult {
        let final_eval = if self.world.model().has_local_testing() {
            None
        } else {
            let found_good: Vec<bool> = self
                .best_probe
                .iter()
                .map(|bp| bp.is_some_and(|(o, _)| self.world.is_good(o)))
                .collect();
            let success_fraction = if found_good.is_empty() {
                0.0
            } else {
                found_good.iter().filter(|&&g| g).count() as f64 / found_good.len() as f64
            };
            Some(FinalEval {
                found_good,
                success_fraction,
            })
        };
        SimResult {
            rounds: self.rounds_executed,
            all_satisfied: self.n_satisfied == self.config.n_honest,
            players: std::mem::take(&mut self.outcomes),
            satisfied_per_round: std::mem::take(&mut self.satisfied_per_round),
            posts_total: self.board.len(),
            forged_rejected: self.forged_rejected,
            notes: self.cohort.notes(),
            final_eval,
            faults: self.fault_counters,
            trace: self.trace.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DishonestPost, NullAdversary};
    use crate::cohort::{CandidateSet, PhaseInfo};
    use distill_billboard::VotePolicy;

    /// Probe uniformly at random every round.
    #[derive(Debug)]
    struct Trivial;
    impl Cohort for Trivial {
        fn directive(&mut self, _view: &BoardView<'_>) -> Directive {
            Directive::ProbeUniform(CandidateSet::All)
        }
        fn phase_info(&self) -> PhaseInfo {
            PhaseInfo::plain("trivial")
        }
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn notes(&self) -> Vec<(String, f64)> {
            vec![("marker".into(), 1.0)]
        }
    }

    /// Always follow advice (fallback: uniform).
    #[derive(Debug)]
    struct AdviceOnly;
    impl Cohort for AdviceOnly {
        fn directive(&mut self, _view: &BoardView<'_>) -> Directive {
            Directive::SeekAdvice {
                fallback: CandidateSet::All,
            }
        }
        fn phase_info(&self) -> PhaseInfo {
            PhaseInfo::plain("advice")
        }
        fn name(&self) -> &'static str {
            "advice-only"
        }
    }

    /// An adversary that tries to forge an honest author every round.
    #[derive(Debug)]
    struct Forger;
    impl Adversary for Forger {
        fn on_round(&mut self, _ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
            vec![DishonestPost::vote(PlayerId(0), ObjectId(0))] // player 0 is honest
        }
        fn name(&self) -> &'static str {
            "forger"
        }
    }

    fn small_world() -> World {
        World::binary(16, 2, 11).unwrap()
    }

    #[test]
    fn trivial_cohort_satisfies_everyone() {
        let world = small_world();
        let config = SimConfig::new(8, 8, 3).with_stop(StopRule::all_satisfied(100_000));
        let engine =
            Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary)).unwrap();
        let result = engine.run().unwrap();
        assert!(result.all_satisfied);
        assert_eq!(result.satisfied_count(), 8);
        assert!(result.mean_probes() >= 1.0);
        assert_eq!(result.note("marker"), Some(1.0));
        assert!(result.final_eval.is_none());
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let world = small_world();
        let mk = |seed| {
            let config = SimConfig::new(8, 6, seed);
            Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
                .unwrap()
                .run()
                .unwrap()
        };
        let a = mk(5);
        let b = mk(5);
        let c = mk(6);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.mean_probes(), b.mean_probes());
        assert_eq!(a.satisfied_per_round, b.satisfied_per_round);
        // different seeds almost surely diverge in some statistic
        assert!(
            a.rounds != c.rounds
                || a.mean_probes() != c.mean_probes()
                || a.posts_total != c.posts_total
        );
    }

    #[test]
    fn advice_spreads_satisfaction() {
        // With one pre-satisfied player holding a good vote, advice-following
        // players should converge quickly.
        let world = small_world();
        let good = world.good_objects()[0];
        let config = SimConfig::new(8, 8, 9)
            .with_pre_satisfied(vec![(PlayerId(0), good)])
            .with_stop(StopRule::all_satisfied(10_000));
        let engine = Engine::new(
            config,
            &world,
            Box::new(AdviceOnly),
            Box::new(NullAdversary),
        )
        .unwrap();
        let result = engine.run().unwrap();
        assert!(result.all_satisfied);
        // player 0 never probed
        assert_eq!(result.players[0].probes, 0);
        assert_eq!(result.players[0].satisfied_round, Some(Round(0)));
        // advice probes dominate
        let advice: u64 = result.players.iter().map(|p| p.advice_probes).sum();
        assert!(advice > 0);
    }

    #[test]
    fn forged_posts_are_rejected() {
        let world = small_world();
        let config = SimConfig::new(8, 6, 1).with_stop(StopRule::all_satisfied(1_000));
        let engine = Engine::new(config, &world, Box::new(Trivial), Box::new(Forger)).unwrap();
        let result = engine.run().unwrap();
        assert!(result.forged_rejected > 0);
        assert!(result.all_satisfied);
    }

    #[test]
    fn horizon_runs_stop_on_time() {
        let world = World::uniform_top_beta(32, 0.1, 3).unwrap();
        let config = SimConfig::new(8, 8, 2)
            .with_policy(VotePolicy::best_value())
            .with_stop(StopRule::horizon(50));
        let engine =
            Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary)).unwrap();
        let result = engine.run().unwrap();
        assert_eq!(result.rounds, 50);
        let eval = result.final_eval.expect("no-LT runs produce a final eval");
        assert_eq!(eval.found_good.len(), 8);
        // with 50 uniform probes over 32 objects, nearly everyone has seen a
        // top-decile object
        assert!(eval.success_fraction > 0.5);
    }

    #[test]
    fn config_world_mismatch_is_rejected() {
        let lt_world = small_world();
        let err = Engine::new(
            SimConfig::new(4, 4, 0).with_policy(VotePolicy::best_value()),
            &lt_world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::InvalidConfig(_)));

        let nolt_world = World::uniform_top_beta(16, 0.2, 0).unwrap();
        // best-value policy but no horizon:
        let err = Engine::new(
            SimConfig::new(4, 4, 0).with_policy(VotePolicy::best_value()),
            &nolt_world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn pre_satisfied_vote_must_be_good() {
        let world = small_world();
        let bad = world.bad_objects()[0];
        let err = Engine::new(
            SimConfig::new(4, 4, 0).with_pre_satisfied(vec![(PlayerId(0), bad)]),
            &world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn pre_satisfied_player_must_be_honest() {
        // Regression: a pre-satisfied entry naming a player id ≥ n_honest
        // used to panic with index-out-of-bounds when seeding the
        // satisfaction flags; it must be an InvalidConfig error like the
        // object-side checks above.
        let world = small_world();
        let good = world.good_objects()[0];
        for player in [PlayerId(4), PlayerId(7), PlayerId(99)] {
            let err = Engine::new(
                SimConfig::new(8, 4, 0).with_pre_satisfied(vec![(player, good)]),
                &world,
                Box::new(Trivial),
                Box::new(NullAdversary),
            )
            .err()
            .unwrap_or_else(|| panic!("pre-satisfied {player} must be rejected"));
            assert!(matches!(err, SimError::InvalidConfig(_)));
        }
        // Boundary: the last honest player is fine.
        assert!(Engine::new(
            SimConfig::new(8, 4, 0).with_pre_satisfied(vec![(PlayerId(3), good)]),
            &world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .is_ok());
    }

    #[test]
    fn max_rounds_safety_valve() {
        // A world where the only good object exists but the cohort idles:
        #[derive(Debug)]
        struct Idler;
        impl Cohort for Idler {
            fn directive(&mut self, _v: &BoardView<'_>) -> Directive {
                Directive::Idle
            }
            fn phase_info(&self) -> PhaseInfo {
                PhaseInfo::plain("idle")
            }
            fn name(&self) -> &'static str {
                "idler"
            }
        }
        let world = small_world();
        let config = SimConfig::new(4, 4, 0).with_stop(StopRule::all_satisfied(25));
        let result = Engine::new(config, &world, Box::new(Idler), Box::new(NullAdversary))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.rounds, 25);
        assert!(!result.all_satisfied);
        assert_eq!(result.total_probes(), 0);
    }

    #[test]
    fn trace_records_events() {
        let world = small_world();
        let config = SimConfig::new(4, 4, 7)
            .with_trace(true)
            .with_stop(StopRule::all_satisfied(10_000));
        let result = Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
            .unwrap()
            .run()
            .unwrap();
        let trace = result.trace.as_ref().expect("trace requested");
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::RoundStart { .. })));
        assert!(trace.iter().any(|e| matches!(e, TraceEvent::Probe { .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Satisfied { .. })));
        let probes = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Probe { .. }))
            .count() as u64;
        assert_eq!(probes, result.total_probes());
    }

    #[test]
    fn negative_reports_can_be_disabled() {
        let world = small_world();
        let on = Engine::new(
            SimConfig::new(8, 8, 4),
            &world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .unwrap()
        .run()
        .unwrap();
        let off = Engine::new(
            SimConfig::new(8, 8, 4).with_negative_reports(false),
            &world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .unwrap()
        .run()
        .unwrap();
        // Identical executions (same seeds, negatives never change votes),
        // but fewer posts without negatives.
        assert_eq!(on.rounds, off.rounds);
        assert!(off.posts_total <= on.posts_total);
    }

    /// Records how many posts were visible on each adversary call.
    #[derive(Debug, Default)]
    struct ViewProbe {
        seen: std::sync::Arc<std::sync::Mutex<Vec<usize>>>,
    }
    impl Adversary for ViewProbe {
        fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
            self.seen.lock().unwrap().push(ctx.view.posts().len());
            Vec::new()
        }
        fn name(&self) -> &'static str {
            "view-probe"
        }
    }

    #[test]
    fn info_models_control_what_the_adversary_sees() {
        use crate::adversary::InfoModel;
        let world = small_world();
        let run = |info: InfoModel| {
            let probe = ViewProbe::default();
            let seen = std::sync::Arc::clone(&probe.seen);
            let config = SimConfig::new(8, 6, 7)
                .with_info(info)
                .with_negative_reports(true)
                .with_stop(StopRule::all_satisfied(50));
            let result = Engine::new(config, &world, Box::new(Trivial), Box::new(probe))
                .unwrap()
                .run()
                .unwrap();
            (
                result,
                std::sync::Arc::try_unwrap(seen)
                    .unwrap()
                    .into_inner()
                    .unwrap(),
            )
        };
        let (res_a, seen_adaptive) = run(InfoModel::Adaptive);
        let (res_s, seen_strong) = run(InfoModel::StronglyAdaptive);
        // Adaptive: in round 0 the adversary sees an empty board (honest
        // round-0 posts land after its call).
        assert_eq!(
            seen_adaptive[0], 0,
            "adaptive must not see round-0 honest posts"
        );
        // Strongly adaptive: round 0's honest posts are already visible.
        assert!(
            seen_strong[0] >= 6,
            "strongly-adaptive must see the current round's honest posts, saw {}",
            seen_strong[0]
        );
        // In both models, by the second call the first round's posts are in.
        assert!(seen_adaptive.len() > 1 && seen_adaptive[1] >= 6);
        assert!(res_a.all_satisfied && res_s.all_satisfied);
    }

    #[test]
    fn straggler_sleeps_then_joins() {
        use crate::config::Participation;
        let world = small_world();
        let config = SimConfig::new(8, 8, 6)
            .with_participation(Participation::Straggler {
                player: PlayerId(0),
                until_round: 10,
            })
            .with_stop(StopRule::all_satisfied(10_000));
        let result = Engine::new(
            config,
            &world,
            Box::new(AdviceOnly),
            Box::new(NullAdversary),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
        // Player 0 did nothing for its first 10 rounds.
        if let Some(r) = result.players[0].satisfied_round {
            assert!(r >= Round(10));
        }
        assert!(result.players[0].probes <= result.rounds.saturating_sub(10));
    }

    #[test]
    fn round_robin_quarters_the_probe_rate() {
        use crate::config::Participation;
        let world = small_world();
        let horizonful = |participation| {
            let config = SimConfig::new(4, 4, 6)
                .with_participation(participation)
                .with_stop(StopRule::all_satisfied(40));
            // Idle-proof cohort that never finds anything: probe only bad
            // objects is impossible to guarantee, so just compare totals with
            // a generous margin.
            Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
                .unwrap()
                .run()
                .unwrap()
        };
        let full = horizonful(Participation::Full);
        let quartered = horizonful(Participation::RoundRobin { groups: 4 });
        // Per executed round, round-robin makes ~1/4 the probes.
        let full_rate = full.total_probes() as f64 / full.rounds as f64;
        let quarter_rate = quartered.total_probes() as f64 / quartered.rounds as f64;
        assert!(
            quarter_rate < full_rate,
            "round-robin must slow the probe rate ({quarter_rate} vs {full_rate})"
        );
    }

    #[test]
    fn random_subset_participation_still_terminates() {
        use crate::config::Participation;
        let world = small_world();
        let config = SimConfig::new(8, 8, 16)
            .with_participation(Participation::RandomSubset { p: 0.3 })
            .with_stop(StopRule::all_satisfied(100_000));
        let result = Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
            .unwrap()
            .run()
            .unwrap();
        assert!(result.all_satisfied);
    }

    #[test]
    fn out_of_range_candidate_set_is_an_error_not_a_panic() {
        // Regression: a hostile (or buggy) cohort handing back a Subset with
        // an object id outside the universe used to crash the engine with an
        // index-out-of-bounds panic when the world was consulted for the
        // probe's value; it must surface as SimError::InvalidDirective.
        #[derive(Debug)]
        struct Rogue;
        impl Cohort for Rogue {
            fn directive(&mut self, _v: &BoardView<'_>) -> Directive {
                Directive::ProbeUniform(CandidateSet::subset(vec![ObjectId(999)]))
            }
            fn phase_info(&self) -> PhaseInfo {
                PhaseInfo::plain("rogue")
            }
            fn name(&self) -> &'static str {
                "rogue"
            }
        }
        let world = small_world();
        let config = SimConfig::new(4, 4, 0).with_stop(StopRule::all_satisfied(25));
        let err = Engine::new(config, &world, Box::new(Rogue), Box::new(NullAdversary))
            .unwrap()
            .run()
            .unwrap_err();
        assert!(
            matches!(err, SimError::InvalidDirective(ref msg) if msg.contains("999")),
            "expected InvalidDirective, got {err:?}"
        );
    }

    #[test]
    fn dropped_posts_never_reach_the_board_but_probes_still_count() {
        let world = small_world();
        let config = SimConfig::new(8, 8, 21)
            .with_faults(FaultPlan::none().with_drop_rate(1.0))
            .with_trace(true)
            .with_stop(StopRule::all_satisfied(10_000));
        let result = Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
            .unwrap()
            .run()
            .unwrap();
        // Local testing is local: everyone still satisfies themselves …
        assert!(result.all_satisfied);
        assert!(result.total_probes() > 0);
        // … but with every post dropped, nothing ever lands on the board.
        assert_eq!(result.posts_total, 0);
        assert_eq!(result.faults.posts_dropped, result.total_probes());
        let trace = result.trace.as_ref().expect("trace requested");
        let dropped = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::PostDropped { .. }))
            .count() as u64;
        assert_eq!(dropped, result.faults.posts_dropped);
    }

    #[test]
    fn crash_stop_shrinks_the_cohort_and_still_terminates() {
        let world = small_world();
        let config = SimConfig::new(8, 8, 13)
            .with_faults(
                FaultPlan::none()
                    .with_crash_rate(1.0)
                    .with_crash_window(1)
                    .with_recovery_rate(0.0),
            )
            .with_trace(true)
            .with_stop(StopRule::all_satisfied(10_000));
        let result = Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
            .unwrap()
            .run()
            .unwrap();
        // Everyone crashes in round 0 and never probes: the run must stop
        // immediately (terminal players) instead of spinning to the cap.
        assert!(!result.all_satisfied);
        assert_eq!(result.faults.crashes, 8);
        assert_eq!(result.total_probes(), 0);
        assert!(result.rounds <= 1);
        for p in &result.players {
            assert_eq!(p.crash_round, Some(Round(0)));
        }
        assert!(result
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .any(|e| matches!(e, TraceEvent::PlayerCrashed { .. })));
    }

    #[test]
    fn crash_recovery_rejoins_with_votes_intact() {
        let world = small_world();
        let config = SimConfig::new(8, 8, 17)
            .with_faults(
                FaultPlan::none()
                    .with_crash_rate(1.0)
                    .with_crash_window(2)
                    .with_recovery_rate(1.0),
            )
            .with_trace(true)
            .with_stop(StopRule::all_satisfied(100_000));
        let result = Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
            .unwrap()
            .run()
            .unwrap();
        // With certain recovery the whole cohort eventually satisfies.
        assert!(result.all_satisfied);
        assert!(result.faults.crashes > 0);
        assert!(result.faults.recoveries > 0);
        assert!(result
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .any(|e| matches!(e, TraceEvent::PlayerRecovered { .. })));
    }

    /// Records the number of visible posts on every directive call.
    #[derive(Debug, Default)]
    struct LenRecorder {
        seen: std::sync::Arc<std::sync::Mutex<Vec<usize>>>,
    }
    impl Cohort for LenRecorder {
        fn directive(&mut self, view: &BoardView<'_>) -> Directive {
            self.seen.lock().unwrap().push(view.posts().len());
            Directive::ProbeUniform(CandidateSet::All)
        }
        fn phase_info(&self) -> PhaseInfo {
            PhaseInfo::plain("len-recorder")
        }
        fn name(&self) -> &'static str {
            "len-recorder"
        }
    }

    #[test]
    fn lagged_views_trail_fresh_views_by_exactly_the_lag() {
        // The recorder ignores what it sees, so the lagged and fresh runs
        // execute identically and their per-round visible-post counts are
        // directly comparable: lagged round r sees what fresh round r − L saw.
        let world = small_world();
        const LAG: u64 = 2;
        let record = |lag: u64| {
            let recorder = LenRecorder::default();
            let seen = std::sync::Arc::clone(&recorder.seen);
            let config = SimConfig::new(8, 8, 19)
                .with_faults(FaultPlan::none().with_view_lag(lag))
                .with_stop(StopRule::all_satisfied(10_000));
            let result = Engine::new(config, &world, Box::new(recorder), Box::new(NullAdversary))
                .unwrap()
                .run()
                .unwrap();
            let seen = std::sync::Arc::try_unwrap(seen)
                .unwrap()
                .into_inner()
                .unwrap();
            (result, seen)
        };
        let (fresh_result, fresh_seen) = record(0);
        let (lagged_result, lagged_seen) = record(LAG);
        // identical executions (the view is never consulted)
        assert_eq!(fresh_result.rounds, lagged_result.rounds);
        assert_eq!(fresh_result.posts_total, lagged_result.posts_total);
        for (r, &len) in lagged_seen.iter().enumerate() {
            let expected = if (r as u64) < LAG {
                0
            } else {
                fresh_seen[r - LAG as usize]
            };
            assert_eq!(len, expected, "lagged view at round {r}");
        }
    }

    #[test]
    fn noop_fault_plan_is_bit_identical_to_no_plan() {
        let world = small_world();
        let run = |config: SimConfig| {
            Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
                .unwrap()
                .run()
                .unwrap()
        };
        let plain = run(SimConfig::new(8, 6, 23).with_trace(true));
        let with_noop_plan = run(SimConfig::new(8, 6, 23)
            .with_trace(true)
            .with_faults(FaultPlan::none()));
        assert_eq!(plain, with_noop_plan);
        assert!(plain.faults.is_empty());
    }

    #[test]
    fn faulted_runs_are_deterministic_in_seed() {
        let world = small_world();
        let run = |seed: u64| {
            let config = SimConfig::new(8, 6, seed)
                .with_faults(
                    FaultPlan::none()
                        .with_drop_rate(0.3)
                        .with_view_lag(1)
                        .with_crash_rate(0.25)
                        .with_crash_window(8)
                        .with_recovery_rate(0.2),
                )
                .with_trace(true)
                .with_stop(StopRule::all_satisfied(50_000));
            Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run(31);
        let b = run(31);
        assert_eq!(a, b);
    }

    #[test]
    fn faulted_reset_rerun_matches_fresh() {
        let world = small_world();
        let plan = FaultPlan::none()
            .with_drop_rate(0.2)
            .with_view_lag(2)
            .with_crash_rate(0.5)
            .with_crash_window(4)
            .with_recovery_rate(0.5);
        let config = |seed: u64| {
            SimConfig::new(8, 8, seed)
                .with_faults(plan)
                .with_stop(StopRule::all_satisfied(50_000))
        };
        let fresh = Engine::new(
            config(41),
            &world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .unwrap()
        .run()
        .unwrap();
        let mut engine = Engine::new(
            config(40),
            &world,
            Box::new(Trivial),
            Box::new(NullAdversary),
        )
        .unwrap();
        engine.run_mut().unwrap();
        engine
            .reset(41, Box::new(Trivial), Box::new(NullAdversary))
            .unwrap();
        let rerun = engine.run_mut().unwrap();
        assert_eq!(fresh, rerun);
    }

    #[test]
    fn honest_error_rate_produces_bad_votes() {
        let world = small_world();
        let config = SimConfig::new(8, 8, 5)
            .with_honest_error_rate(1.0) // always err on bad probes
            .with_policy(VotePolicy::multi_vote(4))
            .with_stop(StopRule::all_satisfied(10_000));
        let engine =
            Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary)).unwrap();
        let result = engine.run().unwrap();
        assert!(result.all_satisfied);
        // With error rate 1.0 every bad probe posted a positive report, so
        // there must be more posts than probes-of-good-objects.
        assert!(result.posts_total as u64 >= result.total_probes());
    }
}
