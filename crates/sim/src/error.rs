//! Simulation error type.

use distill_billboard::BillboardError;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation configuration is inconsistent (e.g. more honest players
    /// than players).
    InvalidConfig(String),
    /// The world description is inconsistent (e.g. no good objects).
    InvalidWorld(String),
    /// A billboard integrity violation surfaced where it should be impossible
    /// (engine bug guard).
    Billboard(BillboardError),
    /// A cohort (honest or adversarial) issued a directive the engine cannot
    /// execute, e.g. a candidate set naming an out-of-range object.
    InvalidDirective(String),
    /// A requested population does not fit the `u32` player-id space. Raised
    /// once, at configuration time, by [`crate::player_count`] — the
    /// engines then convert indices losslessly instead of truncating with
    /// `as u32` casts mid-run.
    TooManyPlayers {
        /// The requested population size.
        n: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::InvalidWorld(msg) => write!(f, "invalid world: {msg}"),
            SimError::Billboard(e) => write!(f, "billboard integrity violation: {e}"),
            SimError::InvalidDirective(msg) => write!(f, "invalid directive: {msg}"),
            SimError::TooManyPlayers { n } => write!(
                f,
                "population of {n} players exceeds the u32 id space ({} max)",
                u32::MAX
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Billboard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BillboardError> for SimError {
    fn from(e: BillboardError) -> Self {
        SimError::Billboard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_billboard::{PlayerId, Round};

    #[test]
    fn display_and_source() {
        let e = SimError::InvalidConfig("n_honest > n".into());
        assert!(e.to_string().contains("n_honest"));
        let inner = BillboardError::RoundRegression {
            attempted: Round(0),
            current: Round(1),
        };
        let e: SimError = inner.clone().into();
        assert!(e.to_string().contains("integrity"));
        assert!(e.source().is_some());
        let e2 = SimError::InvalidWorld("no good objects".into());
        assert!(e2.source().is_none());
        let e3 = SimError::TooManyPlayers { n: u64::MAX };
        assert!(e3.to_string().contains("u32 id space"));
        assert!(e3.source().is_none());
        let _ = PlayerId(0); // keep import used
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
