//! # distill-sim
//!
//! Synchronous round-based simulation engine for the collaboration model of
//! *Adaptive Collaboration in Peer-to-Peer Systems* (ICDCS 2005).
//!
//! The paper's synchronous model (§1.2, §2.1): computation proceeds in
//! rounds; in each round every *active* player reads the billboard, probes
//! one object (paying its cost, learning its value), and posts the result; a
//! player is active until it probes a good object. An α fraction of players
//! are honest; the rest are Byzantine, coordinated by an adversary that may
//! be oblivious or adaptive (§2.3).
//!
//! This crate provides:
//!
//! * [`World`] — the object universe: values, costs, the good set, and the
//!   two object models of §2.2 ([`ObjectModel::LocalTesting`] and
//!   [`ObjectModel::TopBeta`]);
//! * [`Cohort`] — the honest players' shared, public protocol, expressed as a
//!   per-round [`Directive`] plus a [`PhaseInfo`] the adversary may read (the
//!   protocol is public knowledge);
//! * [`Adversary`] — the Byzantine strategy interface, with the
//!   oblivious / adaptive / strongly-adaptive information models;
//! * [`Engine`] — the synchronous round loop, enforcing the billboard
//!   integrity rules and collecting [`SimResult`] metrics;
//! * [`run_trials`] — a deterministic, multi-threaded multi-trial runner.
//!
//! ## Example: random probing against a silent adversary
//!
//! ```
//! use distill_sim::{CandidateSet, Cohort, Directive, Engine, NullAdversary,
//!                   PhaseInfo, SimConfig, StopRule, World};
//! use distill_billboard::BoardView;
//!
//! /// The "trivial algorithm" of §3: probe a uniformly random object each
//! /// round, ignore the billboard.
//! #[derive(Debug)]
//! struct Trivial;
//! impl Cohort for Trivial {
//!     fn directive(&mut self, _view: &BoardView<'_>) -> Directive {
//!         Directive::ProbeUniform(CandidateSet::All)
//!     }
//!     fn phase_info(&self) -> PhaseInfo { PhaseInfo::plain("trivial") }
//!     fn name(&self) -> &'static str { "trivial" }
//! }
//!
//! # fn main() -> Result<(), distill_sim::SimError> {
//! let world = World::binary(64, 8, 7)?;          // m=64 objects, 8 good
//! let config = SimConfig::new(16, 16, 42)        // n=16 players, all honest
//!     .with_stop(StopRule::all_satisfied(10_000));
//! let result = Engine::new(config, &world, Box::new(Trivial), Box::new(NullAdversary))?
//!     .run()?;
//! assert!(result.all_satisfied);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod adversary;
pub mod async_engine;
mod cohort;
mod config;
mod engine;
mod error;
mod faults;
mod metrics;
mod object_model;
pub mod rng;
mod runner;
mod trace;
mod world;

pub use adversary::{Adversary, AdversaryCtx, DishonestPost, InfoModel, NullAdversary};
pub use cohort::{CandidateSet, Cohort, Directive, PhaseInfo};
pub use config::{player_count, Participation, ServicePlan, SimConfig, StopRule};
pub use engine::Engine;
pub use error::SimError;
pub use faults::{FaultCounters, FaultPlan};
pub use metrics::{FinalEval, PlayerOutcome, ResultFold, SimResult};
pub use object_model::ObjectModel;
pub use runner::{run_trials, run_trials_scoped, run_trials_threaded};
pub use trace::{summarize, TraceEvent, TraceSummary};
pub use world::{Probe, ValueDistribution, World, WorldBuilder};

// Re-export the billboard vocabulary so downstream crates can use one import.
pub use distill_billboard as billboard;
pub use distill_billboard::{ObjectId, PlayerId, Round, VotePolicy, Window};
