//! The honest players' protocol interface.

use distill_billboard::{BoardView, ObjectId, Round};
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// The set of objects a directive samples from.
///
/// Cheap to clone (`Arc`-backed), because the same candidate set is shared by
/// every honest player within a phase.
#[derive(Debug, Clone)]
pub enum CandidateSet {
    /// All `m` objects — `{1, …, m}` in Figure 1 Step 1.1.
    All,
    /// An explicit subset (e.g. `S` of Step 1.3 or `C_t` of Step 2.1).
    Subset(Arc<Vec<ObjectId>>),
}

impl CandidateSet {
    /// Wraps an explicit list of objects.
    pub fn subset(objects: Vec<ObjectId>) -> Self {
        CandidateSet::Subset(Arc::new(objects))
    }

    /// Number of objects in the set given universe size `m`.
    pub fn len(&self, m: u32) -> usize {
        match self {
            CandidateSet::All => m as usize,
            CandidateSet::Subset(v) => v.len(),
        }
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self, m: u32) -> bool {
        self.len(m) == 0
    }

    /// `true` iff `object` belongs to the set.
    pub fn contains(&self, object: ObjectId, m: u32) -> bool {
        match self {
            CandidateSet::All => object.0 < m,
            CandidateSet::Subset(v) => v.contains(&object),
        }
    }

    /// Samples a uniformly random member. An empty subset falls back to the
    /// full universe, preserving the synchronous-model invariant that every
    /// active player probes one object per round.
    pub fn sample(&self, m: u32, rng: &mut SmallRng) -> ObjectId {
        match self {
            CandidateSet::All => ObjectId(rng.gen_range(0..m)),
            CandidateSet::Subset(v) if v.is_empty() => ObjectId(rng.gen_range(0..m)),
            CandidateSet::Subset(v) => v[rng.gen_range(0..v.len())],
        }
    }

    /// The members as a vector (materializes `All`).
    pub fn to_vec(&self, m: u32) -> Vec<ObjectId> {
        match self {
            CandidateSet::All => (0..m).map(ObjectId).collect(),
            CandidateSet::Subset(v) => v.as_ref().clone(),
        }
    }
}

impl fmt::Display for CandidateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CandidateSet::All => f.write_str("ALL"),
            CandidateSet::Subset(v) => write!(f, "{{{} objects}}", v.len()),
        }
    }
}

/// What every *unsatisfied honest* player does this round.
#[derive(Debug, Clone)]
pub enum Directive {
    /// Probe a uniformly random object from the set (the first half of
    /// `PROBE&SEEKADVICE`).
    ProbeUniform(CandidateSet),
    /// Pick a uniformly random player `j` (out of all `n`) and probe the
    /// object `j` votes for; if `j` has no vote, fall back to a uniform probe
    /// from `fallback` (the second half of `PROBE&SEEKADVICE`).
    SeekAdvice {
        /// Where to probe when the chosen player has no vote.
        fallback: CandidateSet,
    },
    /// With probability `explore` probe a uniform random object from `set`,
    /// otherwise follow a random player's advice (fallback to `set`). Used by
    /// the `Balance` baseline.
    Mixed {
        /// Probability of the exploration branch.
        explore: f64,
        /// The set to explore (and to fall back to on adviceless players).
        set: CandidateSet,
    },
    /// Probe nothing this round (used between epochs by wrapper cohorts).
    Idle,
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Directive::ProbeUniform(s) => write!(f, "probe-uniform({s})"),
            Directive::SeekAdvice { fallback } => write!(f, "seek-advice(fallback={fallback})"),
            Directive::Mixed { explore, set } => write!(f, "mixed(p={explore}, {set})"),
            Directive::Idle => f.write_str("idle"),
        }
    }
}

/// The publicly-visible state of the honest protocol.
///
/// The protocol is deterministic given the (public) billboard, so a Byzantine
/// adversary can always reconstruct it; handing it over explicitly saves
/// every strategy from re-implementing the schedule and keeps the two views
/// in lock-step.
#[derive(Debug, Clone)]
pub struct PhaseInfo {
    /// Human-readable phase label, e.g. `"attempt.step1.3"` or `"distill.t"`.
    pub label: &'static str,
    /// The candidate set currently being probed.
    pub candidates: CandidateSet,
    /// The first round of the current tally window.
    pub window_start: Round,
    /// The number of votes an object must collect *in the current window* to
    /// survive into the next candidate set, when the phase has such a
    /// threshold (`k₂/4` at Step 1.4, `n/(4·c_t)` at Step 2.2).
    pub survival_threshold: Option<f64>,
    /// The Step-2 while-loop iteration index `t`, when in Step 2.
    pub iteration: Option<u32>,
}

impl PhaseInfo {
    /// A minimal phase info for cohorts without phase structure.
    pub fn plain(label: &'static str) -> Self {
        PhaseInfo {
            label,
            candidates: CandidateSet::All,
            window_start: Round(0),
            survival_threshold: None,
            iteration: None,
        }
    }
}

/// The honest players' shared protocol.
///
/// A `Cohort` drives *all* honest players at once: the paper's algorithms are
/// uniform (every honest player runs the same code on the same public
/// billboard), so their common phase state is computed once per round instead
/// of once per player. Per-player randomness stays per-player: the engine
/// resolves the returned [`Directive`] independently for each unsatisfied
/// player with that player's own RNG stream.
///
/// `directive` is called exactly once per round, in round order, with the
/// billboard state at the *end of the previous round* (synchronous model).
pub trait Cohort {
    /// Decides what every unsatisfied honest player does this round, and
    /// advances the cohort's internal phase state.
    fn directive(&mut self, view: &BoardView<'_>) -> Directive;

    /// The current public phase state (read by the engine after
    /// [`directive`](Cohort::directive), handed to the adversary).
    fn phase_info(&self) -> PhaseInfo;

    /// A short stable name for reporting.
    fn name(&self) -> &'static str;

    /// Cohort-specific metrics exported into [`SimResult::notes`]
    /// (e.g. number of ATTEMPT invocations, while-loop iterations).
    ///
    /// [`SimResult::notes`]: crate::SimResult
    fn notes(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

impl fmt::Debug for dyn Cohort + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cohort({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{stream_rng, Stream};

    #[test]
    fn candidate_set_len_contains() {
        let all = CandidateSet::All;
        assert_eq!(all.len(10), 10);
        assert!(all.contains(ObjectId(9), 10));
        assert!(!all.contains(ObjectId(10), 10));
        let s = CandidateSet::subset(vec![ObjectId(2), ObjectId(5)]);
        assert_eq!(s.len(10), 2);
        assert!(s.contains(ObjectId(5), 10));
        assert!(!s.contains(ObjectId(3), 10));
        assert!(!s.is_empty(10));
        assert!(CandidateSet::subset(vec![]).is_empty(10));
    }

    #[test]
    fn sampling_stays_in_set() {
        let mut rng = stream_rng(0, Stream::Aux(0));
        let s = CandidateSet::subset(vec![ObjectId(3), ObjectId(7)]);
        for _ in 0..100 {
            let o = s.sample(10, &mut rng);
            assert!(o == ObjectId(3) || o == ObjectId(7));
        }
        let all = CandidateSet::All;
        for _ in 0..100 {
            assert!(all.sample(10, &mut rng).0 < 10);
        }
    }

    #[test]
    fn empty_subset_falls_back_to_universe() {
        let mut rng = stream_rng(1, Stream::Aux(1));
        let s = CandidateSet::subset(vec![]);
        let o = s.sample(4, &mut rng);
        assert!(o.0 < 4);
    }

    #[test]
    fn to_vec_materializes() {
        assert_eq!(
            CandidateSet::All.to_vec(3),
            vec![ObjectId(0), ObjectId(1), ObjectId(2)]
        );
        let s = CandidateSet::subset(vec![ObjectId(1)]);
        assert_eq!(s.to_vec(3), vec![ObjectId(1)]);
    }

    #[test]
    fn displays() {
        assert_eq!(CandidateSet::All.to_string(), "ALL");
        assert!(CandidateSet::subset(vec![ObjectId(0)])
            .to_string()
            .contains("1 objects"));
        assert!(Directive::Idle.to_string().contains("idle"));
        let d = Directive::SeekAdvice {
            fallback: CandidateSet::All,
        };
        assert!(d.to_string().contains("seek-advice"));
        let d = Directive::Mixed {
            explore: 0.5,
            set: CandidateSet::All,
        };
        assert!(d.to_string().contains("0.5"));
        let d = Directive::ProbeUniform(CandidateSet::All);
        assert!(d.to_string().contains("probe-uniform"));
    }

    #[test]
    fn plain_phase_info() {
        let p = PhaseInfo::plain("x");
        assert_eq!(p.label, "x");
        assert!(p.survival_threshold.is_none());
        assert!(p.iteration.is_none());
        assert_eq!(p.window_start, Round(0));
    }
}
