//! Per-run measurements.

use crate::faults::FaultCounters;
use crate::trace::TraceEvent;
use distill_billboard::Round;

/// What happened to one honest player.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlayerOutcome {
    /// Total probes performed (= rounds active, in the synchronous model).
    pub probes: u64,
    /// Total cost paid across all probes.
    pub cost_paid: f64,
    /// The round the player became satisfied, if it did.
    pub satisfied_round: Option<Round>,
    /// Probes that followed another player's vote.
    pub advice_probes: u64,
    /// Probes drawn uniformly from a candidate set.
    pub explore_probes: u64,
    /// The round the player crash-stopped, if fault injection crashed it
    /// (`None` in fault-free runs and for survivors).
    pub crash_round: Option<Round>,
}

impl PlayerOutcome {
    pub(crate) fn new() -> Self {
        PlayerOutcome {
            probes: 0,
            cost_paid: 0.0,
            satisfied_round: None,
            advice_probes: 0,
            explore_probes: 0,
            crash_round: None,
        }
    }

    /// `true` iff the player found a good object.
    pub fn is_satisfied(&self) -> bool {
        self.satisfied_round.is_some()
    }
}

/// End-of-horizon evaluation for runs without local testing (§5.3): did each
/// honest player's best-probed object land in the good set?
#[derive(Debug, Clone, PartialEq)]
pub struct FinalEval {
    /// Per honest player: `true` iff its best-value probed object is good.
    pub found_good: Vec<bool>,
    /// Fraction of honest players whose best object is good.
    pub success_fraction: f64,
}

/// The complete outcome of one simulated execution.
///
/// `PartialEq` compares every field, so two results are equal only if the
/// executions were observably identical — the comparison the determinism
/// oracles (fixed seed ⇒ bit-identical result) rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Rounds executed.
    pub rounds: u64,
    /// `true` iff every honest player was satisfied when the run stopped
    /// (always `false` paired with horizon runs that use [`FinalEval`]).
    pub all_satisfied: bool,
    /// Per honest player outcomes, indexed by player id.
    pub players: Vec<PlayerOutcome>,
    /// Cumulative number of satisfied honest players after each round.
    pub satisfied_per_round: Vec<u32>,
    /// Total posts on the billboard at the end.
    pub posts_total: usize,
    /// Dishonest posts rejected for forged author tags.
    pub forged_rejected: u64,
    /// Cohort-exported metrics (attempt counts, iteration counts, …).
    pub notes: Vec<(String, f64)>,
    /// Present for no-local-testing horizon runs.
    pub final_eval: Option<FinalEval>,
    /// Fault-injection event counts (all zero in fault-free runs).
    pub faults: FaultCounters,
    /// Event trace, when the config requested one.
    pub trace: Option<Vec<TraceEvent>>,
}

impl SimResult {
    /// Mean number of probes per honest player (the paper's *individual
    /// cost* under unit costs).
    pub fn mean_probes(&self) -> f64 {
        if self.players.is_empty() {
            return 0.0;
        }
        self.players.iter().map(|p| p.probes as f64).sum::<f64>() / self.players.len() as f64
    }

    /// Mean cost paid per honest player (the individual cost under general
    /// costs, Theorem 12's measure).
    pub fn mean_cost(&self) -> f64 {
        if self.players.is_empty() {
            return 0.0;
        }
        self.players.iter().map(|p| p.cost_paid).sum::<f64>() / self.players.len() as f64
    }

    /// Mean satisfaction round over satisfied players (unsatisfied players
    /// contribute the final round count — a conservative floor).
    pub fn mean_satisfaction_round(&self) -> f64 {
        if self.players.is_empty() {
            return 0.0;
        }
        self.players
            .iter()
            .map(|p| {
                p.satisfied_round
                    .map_or(self.rounds as f64, |r| r.as_u64() as f64 + 1.0)
            })
            .sum::<f64>()
            / self.players.len() as f64
    }

    /// The round by which all players were satisfied (the *last* player's
    /// termination time, Theorem 11's measure), or `None` if some never were.
    pub fn last_satisfaction_round(&self) -> Option<Round> {
        let mut worst = Round(0);
        for p in &self.players {
            match p.satisfied_round {
                Some(r) => worst = worst.max(r),
                None => return None,
            }
        }
        Some(worst)
    }

    /// Number of satisfied honest players.
    pub fn satisfied_count(&self) -> usize {
        self.players.iter().filter(|p| p.is_satisfied()).count()
    }

    /// Total probes by honest players (the *total cost* measure of [1]).
    pub fn total_probes(&self) -> u64 {
        self.players.iter().map(|p| p.probes).sum()
    }

    /// Mean probes over the players that never crashed — the survivors whose
    /// individual cost the degradation experiments compare against the
    /// Theorem-4 bound at the effective honest fraction α′. Equals
    /// [`mean_probes`](SimResult::mean_probes) in fault-free runs; `0.0`
    /// when nobody survived.
    pub fn mean_probes_survivors(&self) -> f64 {
        let mut probes = 0u64;
        let mut survivors = 0u64;
        for p in self.players.iter().filter(|p| p.crash_round.is_none()) {
            probes += p.probes;
            survivors += 1;
        }
        if survivors == 0 {
            return 0.0;
        }
        probes as f64 / survivors as f64
    }

    /// Looks up a cohort note by key.
    pub fn note(&self, key: &str) -> Option<f64> {
        self.notes.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// A streaming consumer of completed trial results.
///
/// Sweep runners call [`fold`](ResultFold::fold) exactly once per completed
/// trial, in ascending trial order, as results become final — letting
/// aggregators (running moments, quantile sketches) consume a sweep in O(1)
/// memory instead of retaining every [`SimResult`]. Quarantined trials are
/// never folded.
///
/// Implemented for any `FnMut(u64, &SimResult)` closure.
pub trait ResultFold {
    /// Consumes the result of trial `trial`.
    fn fold(&mut self, trial: u64, result: &SimResult);
}

impl<F: FnMut(u64, &SimResult)> ResultFold for F {
    fn fold(&mut self, trial: u64, result: &SimResult) {
        self(trial, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(players: Vec<PlayerOutcome>, rounds: u64) -> SimResult {
        SimResult {
            rounds,
            all_satisfied: players.iter().all(|p| p.is_satisfied()),
            players,
            satisfied_per_round: vec![],
            posts_total: 0,
            forged_rejected: 0,
            notes: vec![("x".into(), 2.5)],
            final_eval: None,
            faults: FaultCounters::default(),
            trace: None,
        }
    }

    fn outcome(probes: u64, cost: f64, sat: Option<u64>) -> PlayerOutcome {
        PlayerOutcome {
            probes,
            cost_paid: cost,
            satisfied_round: sat.map(Round),
            advice_probes: 0,
            explore_probes: probes,
            crash_round: None,
        }
    }

    #[test]
    fn aggregates() {
        let r = result_with(vec![outcome(2, 2.0, Some(1)), outcome(4, 8.0, Some(3))], 5);
        assert!((r.mean_probes() - 3.0).abs() < 1e-12);
        assert!((r.mean_cost() - 5.0).abs() < 1e-12);
        assert_eq!(r.last_satisfaction_round(), Some(Round(3)));
        assert_eq!(r.satisfied_count(), 2);
        assert_eq!(r.total_probes(), 6);
        assert!(r.all_satisfied);
        assert_eq!(r.note("x"), Some(2.5));
        assert_eq!(r.note("y"), None);
        // (1+1) + (3+1) over 2 players
        assert!((r.mean_satisfaction_round() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unsatisfied_player_blocks_last_round() {
        let r = result_with(vec![outcome(2, 2.0, Some(1)), outcome(9, 9.0, None)], 9);
        assert_eq!(r.last_satisfaction_round(), None);
        assert_eq!(r.satisfied_count(), 1);
        assert!(!r.all_satisfied);
        // unsatisfied contributes the full horizon
        assert!((r.mean_satisfaction_round() - (2.0 + 9.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_zeroes() {
        // Regression for the NaN bug: `mean_*` divided by `players.len()`
        // with no empty guard, so a result with zero honest players yielded
        // NaN. An all-zeroes report is the correct degenerate answer.
        let r = result_with(vec![], 0);
        assert_eq!(r.mean_probes(), 0.0);
        assert_eq!(r.mean_cost(), 0.0);
        assert_eq!(r.mean_satisfaction_round(), 0.0);
        assert_eq!(r.mean_probes_survivors(), 0.0);
        assert_eq!(r.last_satisfaction_round(), Some(Round(0)));
        assert!(r.mean_probes().is_finite());
        assert!(r.mean_cost().is_finite());
        assert!(r.mean_satisfaction_round().is_finite());
    }

    #[test]
    fn zero_honest_players_cannot_reach_the_engine() {
        // The engine can never produce an empty `players` vector because the
        // config layer rejects n_honest = 0; the guard above is defense in
        // depth for directly constructed results.
        use crate::config::SimConfig;
        assert!(SimConfig::new(4, 0, 7).validate().is_err());
    }

    #[test]
    fn survivor_mean_excludes_crashed_players() {
        let mut crashed = outcome(2, 2.0, None);
        crashed.crash_round = Some(Round(1));
        let r = result_with(vec![outcome(6, 6.0, Some(5)), crashed], 8);
        assert!((r.mean_probes_survivors() - 6.0).abs() < 1e-12);
        // the plain mean still counts everyone
        assert!((r.mean_probes() - 4.0).abs() < 1e-12);
        // all players crashed ⇒ no survivors ⇒ 0.0, not NaN
        let mut a = outcome(1, 1.0, None);
        a.crash_round = Some(Round(0));
        let r = result_with(vec![a], 3);
        assert_eq!(r.mean_probes_survivors(), 0.0);
    }
}
