//! Deterministic multi-trial execution.

use std::sync::PoisonError;

/// Runs `trials` independent simulations sequentially.
///
/// `make` receives the trial index (use it to derive the per-trial seed, e.g.
/// with [`rng::derive_seed`](crate::rng::derive_seed)) and returns that
/// trial's result — typically a [`SimResult`](crate::metrics::SimResult) or a
/// `Result<SimResult, SimError>` when the caller wants to surface engine
/// errors per trial.
pub fn run_trials<R, F>(trials: usize, make: F) -> Vec<R>
where
    F: Fn(u64) -> R,
{
    (0..trials as u64).map(make).collect()
}

/// Runs `trials` independent simulations on `threads` OS threads.
///
/// Work-stealing: workers pull the next trial index from a shared atomic
/// counter, so an uneven trial-duration mix cannot idle a thread the way a
/// static slot split would. Results are tagged with their trial index and
/// sorted once at the end, so threaded and sequential runs of the same
/// closure are byte-identical regardless of scheduling. `threads == 0` is
/// treated as 1.
pub fn run_trials_threaded<R, F>(trials: usize, threads: usize, make: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    run_trials_scoped(trials, threads, || (), |(), t| make(t))
}

/// [`run_trials_threaded`] with a per-worker state arena.
///
/// Each worker thread calls `init` exactly once and threads the resulting
/// state through every trial it steals — the intended use is reusing one
/// [`Engine`](crate::engine::Engine) arena per worker (via
/// [`Engine::reset`](crate::engine::Engine::reset)) instead of
/// reconstructing board/tracker/RNG tables per trial. With `threads <= 1`
/// this degenerates to a sequential loop over one state, no threads spawned.
///
/// Determinism contract: `run(&mut state, t)` must depend only on `t`, never
/// on which trials the state saw before (an engine freshly `reset` for trial
/// `t` satisfies this; property-tested in `tests/engine_props.rs`). Results
/// come back in trial order.
pub fn run_trials_scoped<R, S, I, F>(trials: usize, threads: usize, init: I, run: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> R + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    if threads <= 1 {
        let mut state = init();
        return (0..trials as u64).map(|t| run(&mut state, t)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let done: std::sync::Mutex<Vec<(usize, R)>> = std::sync::Mutex::new(Vec::with_capacity(trials));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= trials {
                        break;
                    }
                    let result = run(&mut state, t as u64);
                    // Indices are unique, so ordering recovery only needs the
                    // tags; recover rather than propagate poison if another
                    // worker panicked mid-push.
                    done.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((t, result));
                }
            });
        }
    });
    let mut tagged = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    tagged.sort_unstable_by_key(|&(t, _)| t);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultCounters;
    use crate::metrics::{PlayerOutcome, SimResult};

    fn fake_result(rounds: u64) -> SimResult {
        SimResult {
            rounds,
            all_satisfied: true,
            players: vec![PlayerOutcome {
                probes: rounds,
                cost_paid: rounds as f64,
                satisfied_round: None,
                advice_probes: 0,
                explore_probes: rounds,
                crash_round: None,
            }],
            satisfied_per_round: vec![],
            posts_total: 0,
            forged_rejected: 0,
            notes: vec![],
            final_eval: None,
            faults: FaultCounters::default(),
            trace: None,
        }
    }

    #[test]
    fn sequential_preserves_order() {
        let out = run_trials(5, |t| fake_result(t + 1));
        let rounds: Vec<u64> = out.iter().map(|r| r.rounds).collect();
        assert_eq!(rounds, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let seq = run_trials(16, |t| fake_result(t * 3));
        let par = run_trials_threaded(16, 4, |t| fake_result(t * 3));
        let a: Vec<u64> = seq.iter().map(|r| r.rounds).collect();
        let b: Vec<u64> = par.iter().map(|r| r.rounds).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn generic_return_types_are_supported() {
        // The runners are generic over the trial result, so fallible engines
        // can return Result per trial without unwrapping inside the closure.
        let out: Vec<Result<u64, String>> = run_trials_threaded(8, 4, |t| {
            if t % 2 == 0 {
                Ok(t)
            } else {
                Err(format!("{t}"))
            }
        });
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 4);
        assert_eq!(out[3], Err("3".to_string()));
    }

    #[test]
    fn scoped_runner_reuses_worker_state_and_preserves_order() {
        // State counts how many trials this worker ran; the result must not
        // depend on it (determinism contract), but init must run per worker.
        let out = run_trials_scoped(
            12,
            3,
            || 0u64,
            |seen, t| {
                *seen += 1;
                t * 2
            },
        );
        assert_eq!(out, (0..12u64).map(|t| t * 2).collect::<Vec<_>>());
        // Sequential path: exactly one state sees every trial.
        let out = run_trials_scoped(
            5,
            1,
            || 0u64,
            |seen, t| {
                *seen += 1;
                (*seen, t)
            },
        );
        assert_eq!(out.last(), Some(&(5, 4)));
    }

    #[test]
    fn degenerate_thread_counts() {
        assert_eq!(run_trials_threaded(3, 0, fake_result).len(), 3);
        assert_eq!(run_trials_threaded(0, 8, fake_result).len(), 0);
        assert_eq!(run_trials_threaded(2, 100, fake_result).len(), 2);
    }
}
