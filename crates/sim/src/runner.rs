//! Deterministic multi-trial execution.

use std::sync::PoisonError;

/// Runs `trials` independent simulations sequentially.
///
/// `make` receives the trial index (use it to derive the per-trial seed, e.g.
/// with [`rng::derive_seed`](crate::rng::derive_seed)) and returns that
/// trial's result — typically a [`SimResult`](crate::metrics::SimResult) or a
/// `Result<SimResult, SimError>` when the caller wants to surface engine
/// errors per trial.
pub fn run_trials<R, F>(trials: usize, make: F) -> Vec<R>
where
    F: Fn(u64) -> R,
{
    (0..trials as u64).map(make).collect()
}

/// Runs `trials` independent simulations on `threads` OS threads.
///
/// Results come back in trial order regardless of scheduling, so threaded and
/// sequential runs of the same closure are byte-identical. `threads == 0` is
/// treated as 1.
// The final slot-collection expect is genuinely infallible (see the lint
// justification at the call site), so the clippy deny is lifted for this one
// function rather than weakening the workspace policy.
#[allow(clippy::expect_used)]
pub fn run_trials_threaded<R, F>(trials: usize, threads: usize, make: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let threads = threads.max(1).min(trials.max(1));
    if threads <= 1 {
        return run_trials(trials, make);
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(trials, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_mutex: Vec<std::sync::Mutex<&mut Option<R>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if t >= trials {
                    break;
                }
                let result = make(t as u64);
                // Each slot is locked exactly once; recover rather than
                // propagate poison if another worker panicked mid-store.
                **slots_mutex[t]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    drop(slots_mutex);
    slots
        .into_iter()
        // lint: allow(panic) — scoped threads either fill every slot or propagate their panic out of `scope`, so an empty slot is unreachable
        .map(|s| s.expect("every trial slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{PlayerOutcome, SimResult};

    fn fake_result(rounds: u64) -> SimResult {
        SimResult {
            rounds,
            all_satisfied: true,
            players: vec![PlayerOutcome {
                probes: rounds,
                cost_paid: rounds as f64,
                satisfied_round: None,
                advice_probes: 0,
                explore_probes: rounds,
            }],
            satisfied_per_round: vec![],
            posts_total: 0,
            forged_rejected: 0,
            notes: vec![],
            final_eval: None,
            trace: None,
        }
    }

    #[test]
    fn sequential_preserves_order() {
        let out = run_trials(5, |t| fake_result(t + 1));
        let rounds: Vec<u64> = out.iter().map(|r| r.rounds).collect();
        assert_eq!(rounds, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let seq = run_trials(16, |t| fake_result(t * 3));
        let par = run_trials_threaded(16, 4, |t| fake_result(t * 3));
        let a: Vec<u64> = seq.iter().map(|r| r.rounds).collect();
        let b: Vec<u64> = par.iter().map(|r| r.rounds).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn generic_return_types_are_supported() {
        // The runners are generic over the trial result, so fallible engines
        // can return Result per trial without unwrapping inside the closure.
        let out: Vec<Result<u64, String>> = run_trials_threaded(8, 4, |t| {
            if t % 2 == 0 {
                Ok(t)
            } else {
                Err(format!("{t}"))
            }
        });
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 4);
        assert_eq!(out[3], Err("3".to_string()));
    }

    #[test]
    fn degenerate_thread_counts() {
        assert_eq!(run_trials_threaded(3, 0, fake_result).len(), 3);
        assert_eq!(run_trials_threaded(0, 8, fake_result).len(), 0);
        assert_eq!(run_trials_threaded(2, 100, fake_result).len(), 2);
    }
}
