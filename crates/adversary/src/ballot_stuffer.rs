//! Unbounded positive voting (reader-cap stress).

use distill_sim::{Adversary, AdversaryCtx, DishonestPost};

/// Posts `per_round` positive votes for random bad objects from **every**
/// dishonest player, **every** round, forever.
///
/// The billboard accepts all of it (it is append-only and unopinionated);
/// the attack is defeated purely by the reader-side
/// [`VotePolicy`](distill_billboard::VotePolicy) cap — honest readers count
/// only the first `f` positive reports per author. This strategy exists to
/// verify that the cap, not some accident of timing, is what bounds the
/// adversary's influence (and to stress tracker throughput).
#[derive(Debug, Clone, Copy)]
pub struct BallotStuffer {
    per_round: u32,
}

impl BallotStuffer {
    /// `per_round` stuffed ballots per dishonest player per round.
    ///
    /// # Panics
    /// Panics if `per_round == 0`.
    pub fn new(per_round: u32) -> Self {
        assert!(per_round >= 1, "per_round must be at least 1");
        BallotStuffer { per_round }
    }
}

impl Default for BallotStuffer {
    fn default() -> Self {
        BallotStuffer::new(4)
    }
}

impl Adversary for BallotStuffer {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        use rand::Rng;
        let bad = ctx.world.bad_objects();
        if bad.is_empty() {
            return Vec::new();
        }
        let mut posts = Vec::with_capacity(ctx.dishonest.len() * self.per_round as usize);
        for &p in ctx.dishonest {
            for _ in 0..self.per_round {
                posts.push(DishonestPost::vote(p, bad[ctx.rng.gen_range(0..bad.len())]));
            }
        }
        posts
    }

    fn name(&self) -> &'static str {
        "ballot-stuffer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_billboard::PlayerId;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule, World};

    #[test]
    fn reader_cap_defeats_stuffing() {
        let n = 32;
        let world = World::binary(n, 1, 8).unwrap();
        let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
        let config = SimConfig::new(n, 24, 13).with_stop(StopRule::all_satisfied(200_000));
        let engine = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(BallotStuffer::new(8)),
        )
        .unwrap();
        let result = engine.run().unwrap();
        assert!(result.all_satisfied);
        // Billboard volume is huge, yet vote influence stays capped at one
        // per dishonest player.
        assert!(result.posts_total as u64 > result.total_probes());
    }

    #[test]
    fn tracker_counts_at_most_one_vote_per_stuffer() {
        let n = 16;
        let world = World::binary(n, 1, 8).unwrap();
        let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
        let config = SimConfig::new(n, 12, 13).with_stop(StopRule::all_satisfied(100_000));
        let mut engine = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(BallotStuffer::new(16)),
        )
        .unwrap();
        for _ in 0..20 {
            engine.step().unwrap();
        }
        for p in 12..16u32 {
            assert!(
                engine.tracker().votes_of(PlayerId(p)).len() <= 1,
                "stuffer {p} counted more than once"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rate_rejected() {
        let _ = BallotStuffer::new(0);
    }
}
