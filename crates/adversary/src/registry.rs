//! The standard strategy gauntlet.

use crate::{
    AdviceBait, BallotStuffer, Collusive, Flooder, Lull, Slander, ThresholdMatcher, UniformBad,
};
use distill_sim::{Adversary, NullAdversary};

/// One gauntlet entry: a stable name plus a factory producing a fresh
/// strategy instance per trial (strategies are stateful, so instances must
/// not be shared across runs).
#[derive(Clone, Copy)]
pub struct GauntletEntry {
    /// Stable strategy name for reporting.
    pub name: &'static str,
    /// Produces a fresh instance.
    pub make: fn() -> Box<dyn Adversary>,
}

impl std::fmt::Debug for GauntletEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GauntletEntry({})", self.name)
    }
}

/// The standard adversary gauntlet used by the robustness ablation (E14):
/// every world-agnostic strategy with default parameters.
///
/// [`Mimicry`](crate::Mimicry) is excluded — it requires its own instance
/// construction ([`MimicryInstance`](crate::MimicryInstance)) and has a
/// dedicated experiment (E5).
pub fn gauntlet() -> Vec<GauntletEntry> {
    vec![
        GauntletEntry {
            name: "null",
            make: || Box::new(NullAdversary),
        },
        GauntletEntry {
            name: "uniform-bad",
            make: || Box::new(UniformBad::new()),
        },
        GauntletEntry {
            name: "collusive",
            make: || Box::<Collusive>::default(),
        },
        GauntletEntry {
            name: "threshold-matcher",
            make: || Box::new(ThresholdMatcher::new()),
        },
        GauntletEntry {
            name: "slander",
            make: || Box::new(Slander::new()),
        },
        GauntletEntry {
            name: "ballot-stuffer",
            make: || Box::<BallotStuffer>::default(),
        },
        GauntletEntry {
            name: "advice-bait",
            make: || Box::new(AdviceBait::new()),
        },
        GauntletEntry {
            name: "lull",
            make: || Box::<Lull>::default(),
        },
        GauntletEntry {
            name: "flooder",
            make: || Box::<Flooder>::default(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule, World};

    #[test]
    fn names_match_instances() {
        for entry in gauntlet() {
            let adversary = (entry.make)();
            assert_eq!(adversary.name(), entry.name);
        }
    }

    #[test]
    fn distill_survives_the_whole_gauntlet() {
        let n = 32;
        let world = World::binary(n, 1, 5).unwrap();
        for entry in gauntlet() {
            let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
            let config = SimConfig::new(n, 24, 31).with_stop(StopRule::all_satisfied(300_000));
            let result = Engine::new(
                config,
                &world,
                Box::new(Distill::new(params)),
                (entry.make)(),
            )
            .unwrap()
            .run()
            .unwrap();
            assert!(
                result.all_satisfied,
                "DISTILL failed against {}",
                entry.name
            );
        }
    }
}
