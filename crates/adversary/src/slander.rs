//! Negative-report flooding ("is slander useless?").

use distill_sim::{Adversary, AdversaryCtx, DishonestPost};

/// Floods the billboard with negative reports against the objects that
/// currently hold the most votes — i.e. tries to *discredit* whatever the
/// honest population is converging on.
///
/// Algorithm DISTILL "uses only positive recommendations … and flatly
/// ignores bad recommendations" (§6), so this strategy must have **zero**
/// effect on the execution beyond billboard volume. The gauntlet experiment
/// (E14) verifies exactly that; the paper leaves "can bad recommendations
/// help close the gap?" as an open problem, and this adversary is the
/// control for it.
///
/// Each dishonest player additionally casts one positive vote for a bad
/// object (otherwise the strategy would be strictly weaker than
/// [`UniformBad`](crate::UniformBad) and the comparison uninformative).
#[derive(Debug, Clone, Copy, Default)]
pub struct Slander {
    round: u64,
    posts_per_round: u32,
}

impl Slander {
    /// One slander post per dishonest player per round.
    pub fn new() -> Self {
        Slander {
            round: 0,
            posts_per_round: 1,
        }
    }

    /// `k` slander posts per dishonest player per round.
    pub fn with_volume(k: u32) -> Self {
        Slander {
            round: 0,
            posts_per_round: k,
        }
    }
}

impl Adversary for Slander {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        use rand::Rng;
        let round = self.round;
        self.round += 1;
        let mut posts = Vec::new();

        // Round 0: spend the real votes on bad objects.
        if round == 0 {
            let bad = ctx.world.bad_objects();
            if !bad.is_empty() {
                for &p in ctx.dishonest {
                    posts.push(DishonestPost::vote(p, bad[ctx.rng.gen_range(0..bad.len())]));
                }
            }
        }

        // Every round: slander the most-voted objects (the honest consensus).
        let mut voted = ctx.view.objects_with_votes().to_vec();
        voted.sort_by_key(|&o| std::cmp::Reverse(ctx.view.votes_for(o)));
        voted.truncate(4);
        if voted.is_empty() {
            return posts;
        }
        for &p in ctx.dishonest {
            for i in 0..self.posts_per_round {
                let target = voted[(i as usize) % voted.len()];
                posts.push(DishonestPost::slander(p, target));
            }
        }
        posts
    }

    fn name(&self) -> &'static str {
        "slander"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule, World};

    /// The heart of "slander is useless" for DISTILL: an execution under
    /// Slander is *identical* (same seeds) to one under an adversary that
    /// only casts the same round-0 votes, because negative reports never
    /// become votes.
    #[test]
    fn slander_does_not_change_the_execution() {
        let n = 32;
        let world = World::binary(n, 1, 21).unwrap();
        let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
        let run = |slander_volume: Option<u32>| {
            let config = SimConfig::new(n, 24, 77).with_stop(StopRule::all_satisfied(200_000));
            let adversary: Box<dyn distill_sim::Adversary> = match slander_volume {
                Some(k) => Box::new(Slander::with_volume(k)),
                None => Box::new(Slander {
                    round: 0,
                    posts_per_round: 0,
                }),
            };
            Engine::new(config, &world, Box::new(Distill::new(params)), adversary)
                .unwrap()
                .run()
                .unwrap()
        };
        let with = run(Some(3));
        let without = run(None);
        assert_eq!(with.rounds, without.rounds);
        assert_eq!(with.mean_probes(), without.mean_probes());
        assert_eq!(with.satisfied_per_round, without.satisfied_per_round);
        assert!(
            with.posts_total > without.posts_total,
            "slander inflates volume only"
        );
    }
}
