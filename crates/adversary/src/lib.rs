//! # distill-adversary
//!
//! Byzantine strategies for the collaboration model of *Adaptive
//! Collaboration in Peer-to-Peer Systems* (ICDCS 2005).
//!
//! The paper's guarantees are worst-case over **all** adversaries (§2.3:
//! Byzantine, adaptive); these strategies implement the extremal behaviours
//! its proofs identify, plus ablations and stress cases:
//!
//! | Strategy | Role |
//! |---|---|
//! | [`NullAdversary`] (re-exported) | silent baseline |
//! | [`UniformBad`] | one vote per dishonest player for a random bad object |
//! | [`Collusive`] | the whole vote budget concentrated on a few bad objects |
//! | [`ThresholdMatcher`] | the Equation-1 budget-optimal adaptive attack: keeps as many bad candidates as possible just above DISTILL's survival thresholds |
//! | [`Mimicry`] + [`MimicryInstance`] | the Theorem 2 symmetric-groups construction |
//! | [`Lull`] | silence until the endgame, then a full-budget advice-channel strike |
//! | [`Slander`] | floods negative reports on good objects ("is slander useless?") |
//! | [`BallotStuffer`] | unbounded positive votes (exercises the reader-side `f`-cap) |
//! | [`AdviceBait`] | early distinct bad votes to poison the advice channel |
//! | [`Flooder`] | sheer post volume (billboard/tracker stress) |
//!
//! All strategies receive the honest protocol's public
//! [`PhaseInfo`](distill_sim::PhaseInfo) — the protocol is public knowledge,
//! so this grants no power the model does not already grant.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod advice_bait;
mod ballot_stuffer;
mod collusive;
mod flooder;
mod lull;
mod mimicry;
mod registry;
mod slander;
mod threshold_matcher;
mod uniform_bad;

pub use advice_bait::AdviceBait;
pub use ballot_stuffer::BallotStuffer;
pub use collusive::Collusive;
pub use flooder::Flooder;
pub use lull::Lull;
pub use mimicry::{Mimicry, MimicryInstance};
pub use registry::{gauntlet, GauntletEntry};
pub use slander::Slander;
pub use threshold_matcher::ThresholdMatcher;
pub use uniform_bad::UniformBad;

pub use distill_sim::NullAdversary;
