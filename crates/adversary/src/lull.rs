//! Endgame poisoning: hold the budget until the protocol is almost done.

use distill_sim::{Adversary, AdversaryCtx, DishonestPost};

/// Waits in silence until a target fraction of players hold votes — i.e.
/// until the Lemma 6 endgame, when stragglers rely on advice probes — and
/// only then spends the entire vote budget on distinct bad objects.
///
/// This is the timing-extremal complement of the
/// [`ThresholdMatcher`](crate::ThresholdMatcher): instead of fighting the
/// distillation loop it attacks the advice channel precisely when the
/// remaining honest players depend on it most. Lemma 6's bound already
/// covers this — with ≥ `αn/2` good votes on the board, a random player's
/// vote is good with probability ≥ `α/2` regardless of how the remaining
/// `(1−α)n` votes are timed — so DISTILL's endgame survives.
#[derive(Debug, Clone, Copy)]
pub struct Lull {
    trigger_fraction: f64,
    fired: bool,
}

impl Lull {
    /// Fires once `trigger_fraction` of all players hold votes.
    ///
    /// # Panics
    /// Panics unless `0 < trigger_fraction ≤ 1`.
    pub fn new(trigger_fraction: f64) -> Self {
        assert!(
            0.0 < trigger_fraction && trigger_fraction <= 1.0,
            "trigger fraction {trigger_fraction} out of (0, 1]"
        );
        Lull {
            trigger_fraction,
            fired: false,
        }
    }
}

impl Default for Lull {
    /// Fires when a third of the population has voted.
    fn default() -> Self {
        Lull::new(1.0 / 3.0)
    }
}

impl Adversary for Lull {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        if self.fired {
            return Vec::new();
        }
        let voters = ctx.view.voters() as f64;
        if voters < self.trigger_fraction * f64::from(ctx.n()) {
            return Vec::new();
        }
        self.fired = true;
        let bad = ctx.world.bad_objects();
        if bad.is_empty() {
            return Vec::new();
        }
        ctx.fresh_voters()
            .into_iter()
            .enumerate()
            .map(|(i, p)| DishonestPost::vote(p, bad[i % bad.len()]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "lull"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule, World};

    #[test]
    fn lull_waits_then_fires_once() {
        let n = 64;
        let world = World::binary(n, 1, 19).unwrap();
        let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
        let config = SimConfig::new(n, 48, 8).with_stop(StopRule::all_satisfied(500_000));
        let mut engine = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(Lull::default()),
        )
        .unwrap();
        // Early on, no dishonest votes exist.
        engine.step().unwrap();
        let early_dishonest_votes = engine
            .tracker()
            .events()
            .iter()
            .filter(|e| e.player.0 >= 48)
            .count();
        assert_eq!(early_dishonest_votes, 0, "lull must start silent");
        let result = engine.run().unwrap();
        assert!(result.all_satisfied, "DISTILL must survive the lull attack");
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn trigger_fraction_validated() {
        let _ = Lull::new(0.0);
    }
}
