//! Poisoning the advice channel.

use distill_sim::{Adversary, AdversaryCtx, DishonestPost};

/// Targets `PROBE&SEEKADVICE`'s second probe: at round 0, every dishonest
/// player votes for a **distinct** bad object (cycling if there are fewer bad
/// objects than dishonest players).
///
/// An advice probe follows the vote of a uniformly random player, so with
/// `(1−α)n` baited votes a fraction `≈ (1−α)` of advice probes are wasted on
/// distinct bad objects — the worst case for the advice mechanism, because
/// distinct targets also maximize the candidate pollution of the voted set
/// `S`. Lemma 6's `4/α` endgame bound already prices this in; experiment E12
/// measures against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdviceBait {
    fired: bool,
}

impl AdviceBait {
    /// Creates the strategy.
    pub fn new() -> Self {
        AdviceBait { fired: false }
    }
}

impl Adversary for AdviceBait {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        let bad = ctx.world.bad_objects();
        if bad.is_empty() {
            return Vec::new();
        }
        ctx.dishonest
            .iter()
            .enumerate()
            .map(|(i, &p)| DishonestPost::vote(p, bad[i % bad.len()]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "advice-bait"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule, World};

    #[test]
    fn distinct_bait_votes_cover_bad_objects() {
        let n = 32;
        let world = World::binary(n, 1, 6).unwrap();
        let params = DistillParams::new(n, n, 0.5, world.beta()).unwrap();
        let config = SimConfig::new(n, 16, 3).with_stop(StopRule::all_satisfied(500_000));
        let mut engine = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(AdviceBait::new()),
        )
        .unwrap();
        engine.step().unwrap();
        // 16 dishonest players voted for 16 distinct bad objects.
        let voted = engine.tracker().objects_with_votes();
        assert!(voted.len() >= 16);
        let result = engine.run().unwrap();
        assert!(result.all_satisfied, "DISTILL survives advice bait");
    }
}
