//! The whole dishonest vote budget concentrated on a few bad objects.

use distill_billboard::ObjectId;
use distill_sim::{Adversary, AdversaryCtx, DishonestPost};

/// A colluding bloc: every dishonest player votes for one of `targets`
/// pre-agreed bad objects, all in round `at_round`.
///
/// Concentration is the opposite extreme of [`UniformBad`](crate::UniformBad):
/// instead of polluting many objects with one vote each, the bloc pushes a
/// few bad objects to very high vote counts — the attack that popularity-
/// style algorithms fall to (§1.3's "forming a malicious collective in fact
/// heavily boosts the trust values of malicious nodes"), and that DISTILL's
/// one-vote budget + per-iteration thresholds are designed to absorb.
#[derive(Debug, Clone, Copy)]
pub struct Collusive {
    targets: usize,
    at_round: u64,
    fired: bool,
    rounds_seen: u64,
}

impl Collusive {
    /// A bloc voting for `targets` bad objects in round `at_round`.
    ///
    /// # Panics
    /// Panics if `targets == 0`.
    pub fn new(targets: usize, at_round: u64) -> Self {
        assert!(targets >= 1, "need at least one target");
        Collusive {
            targets,
            at_round,
            fired: false,
            rounds_seen: 0,
        }
    }
}

impl Default for Collusive {
    /// Two targets, firing immediately.
    fn default() -> Self {
        Collusive::new(2, 0)
    }
}

impl Adversary for Collusive {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        let now = self.rounds_seen;
        self.rounds_seen += 1;
        if self.fired || now < self.at_round {
            return Vec::new();
        }
        self.fired = true;
        let bad = ctx.world.bad_objects();
        if bad.is_empty() {
            return Vec::new();
        }
        let chosen: Vec<ObjectId> = bad.into_iter().take(self.targets).collect();
        ctx.dishonest
            .iter()
            .enumerate()
            .map(|(i, &p)| DishonestPost::vote(p, chosen[i % chosen.len()]))
            .collect()
    }

    fn name(&self) -> &'static str {
        "collusive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_billboard::BoardView;
    use distill_sim::{CandidateSet, Cohort, Directive, Engine, PhaseInfo, SimConfig, World};

    #[derive(Debug)]
    struct Trivial;
    impl Cohort for Trivial {
        fn directive(&mut self, _v: &BoardView<'_>) -> Directive {
            Directive::ProbeUniform(CandidateSet::All)
        }
        fn phase_info(&self) -> PhaseInfo {
            PhaseInfo::plain("trivial")
        }
        fn name(&self) -> &'static str {
            "trivial"
        }
    }

    #[test]
    fn bloc_votes_land_on_few_objects() {
        let world = World::binary(32, 2, 7).unwrap();
        let config = SimConfig::new(16, 8, 5);
        let result = Engine::new(
            config,
            &world,
            Box::new(Trivial),
            Box::new(Collusive::new(2, 0)),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
        // 8 dishonest players voted; honest players each voted once on
        // satisfaction. Posts exist and none were forged.
        assert_eq!(result.forged_rejected, 0);
        assert!(result.posts_total >= 8);
    }

    #[test]
    fn delayed_firing() {
        let world = World::binary(32, 2, 7).unwrap();
        let config = SimConfig::new(16, 12, 6);
        let result = Engine::new(
            config,
            &world,
            Box::new(Trivial),
            Box::new(Collusive::new(1, 3)),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn zero_targets_rejected() {
        let _ = Collusive::new(0, 0);
    }
}
