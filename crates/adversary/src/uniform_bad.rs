//! Each dishonest player votes once for a random bad object.

use distill_sim::{Adversary, AdversaryCtx, DishonestPost};
use rand::Rng;

/// The simplest vote-wasting attack: in its first `spread_rounds` rounds the
/// adversary has every dishonest player cast its single vote for a uniformly
/// random **bad** object.
///
/// This is an *oblivious* strategy (it ignores the billboard), useful as the
/// canonical "some noise on the board" adversary: it maximizes the number of
/// distinct bad objects carrying votes, which pollutes the voted set `S` and
/// the advice channel without any coordination.
#[derive(Debug, Clone, Copy)]
pub struct UniformBad {
    spread_rounds: u64,
    rounds_seen: u64,
    done: bool,
}

impl UniformBad {
    /// All votes cast in round 0.
    pub fn new() -> Self {
        Self::spread_over(1)
    }

    /// Votes staggered evenly over the first `rounds` rounds (≥ 1).
    ///
    /// # Panics
    /// Panics if `rounds == 0`.
    pub fn spread_over(rounds: u64) -> Self {
        assert!(rounds >= 1, "spread must cover at least one round");
        UniformBad {
            spread_rounds: rounds,
            rounds_seen: 0,
            done: false,
        }
    }
}

impl Default for UniformBad {
    fn default() -> Self {
        UniformBad::new()
    }
}

impl Adversary for UniformBad {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        if self.done {
            return Vec::new();
        }
        let slice = self.rounds_seen;
        self.rounds_seen += 1;
        if self.rounds_seen >= self.spread_rounds {
            self.done = true;
        }
        let bad = ctx.world.bad_objects();
        if bad.is_empty() {
            self.done = true;
            return Vec::new();
        }
        ctx.dishonest
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u64) % self.spread_rounds == slice)
            .map(|(_, &p)| {
                let target = bad[ctx.rng.gen_range(0..bad.len())];
                DishonestPost::vote(p, target)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "uniform-bad"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_billboard::BoardView;
    use distill_sim::CandidateSet;
    use distill_sim::{Cohort, Directive, Engine, PhaseInfo, SimConfig, World};

    #[derive(Debug)]
    struct Trivial;
    impl Cohort for Trivial {
        fn directive(&mut self, _v: &BoardView<'_>) -> Directive {
            Directive::ProbeUniform(CandidateSet::All)
        }
        fn phase_info(&self) -> PhaseInfo {
            PhaseInfo::plain("trivial")
        }
        fn name(&self) -> &'static str {
            "trivial"
        }
    }

    #[test]
    fn casts_one_vote_per_dishonest_player() {
        let world = World::binary(32, 4, 1).unwrap();
        let config = SimConfig::new(16, 8, 2);
        let result = Engine::new(
            config,
            &world,
            Box::new(Trivial),
            Box::new(UniformBad::new()),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
        assert_eq!(result.forged_rejected, 0);
    }

    #[test]
    fn spread_staggers_votes() {
        let world = World::binary(32, 4, 1).unwrap();
        let config = SimConfig::new(16, 8, 3);
        let result = Engine::new(
            config,
            &world,
            Box::new(Trivial),
            Box::new(UniformBad::spread_over(4)),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_spread_rejected() {
        let _ = UniformBad::spread_over(0);
    }
}
