//! Raw post-volume stress.

use distill_billboard::ReportKind;
use distill_sim::{Adversary, AdversaryCtx, DishonestPost};

/// Posts `volume` junk messages per round — random objects, random claimed
/// values, random polarity — spread across the dishonest players.
///
/// A pure denial-of-quality attack on the *infrastructure*: the algorithm is
/// unaffected (junk positives are capped by the reader policy, junk negatives
/// are ignored outright), so this strategy exists to keep the billboard and
/// tracker honest about their `O(new posts)` ingestion costs. Used by the
/// Criterion perf benches.
#[derive(Debug, Clone, Copy)]
pub struct Flooder {
    volume: u32,
}

impl Flooder {
    /// `volume` junk posts per round, round-robined over dishonest players.
    ///
    /// # Panics
    /// Panics if `volume == 0`.
    pub fn new(volume: u32) -> Self {
        assert!(volume >= 1, "volume must be at least 1");
        Flooder { volume }
    }
}

impl Default for Flooder {
    fn default() -> Self {
        Flooder::new(64)
    }
}

impl Adversary for Flooder {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        use rand::Rng;
        if ctx.dishonest.is_empty() {
            return Vec::new();
        }
        let m = ctx.m();
        (0..self.volume)
            .map(|i| {
                let author = ctx.dishonest[(i as usize) % ctx.dishonest.len()];
                DishonestPost {
                    author,
                    object: distill_billboard::ObjectId(ctx.rng.gen_range(0..m)),
                    value: ctx.rng.gen::<f64>() * 2.0,
                    kind: if ctx.rng.gen::<bool>() {
                        ReportKind::Positive
                    } else {
                        ReportKind::Negative
                    },
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "flooder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule, World};

    #[test]
    fn flood_does_not_break_termination() {
        let n = 32;
        let world = World::binary(n, 1, 14).unwrap();
        let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
        let config = SimConfig::new(n, 24, 9).with_stop(StopRule::all_satisfied(200_000));
        let result = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(Flooder::new(100)),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
        assert!(result.posts_total as u64 >= 100 * result.rounds / 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_volume_rejected() {
        let _ = Flooder::new(0);
    }
}
