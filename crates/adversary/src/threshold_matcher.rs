//! The Equation-1 budget-optimal adaptive attack.

use distill_billboard::{ObjectId, Round};
use distill_sim::{Adversary, AdversaryCtx, DishonestPost};

/// The canonical adaptive attack against DISTILL's candidate refinement.
///
/// Lemma 7's accounting (Equation 1) charges the adversary `⌈n/(4·c_{t−1})⌉`
/// fresh votes per bad object kept alive per iteration, against a total
/// budget of `(1−α)n` votes. `ThresholdMatcher` spends that budget with
/// maximal efficiency: whenever the public phase enters a new tally window
/// with a survival threshold (Step 1.3's `k₂/4` admission to `C₀`, or Step
/// 2's `n/(4·c_t)`), it immediately posts *just enough* fresh votes —
/// threshold-matching, hence the name — for as many bad candidates as the
/// remaining budget covers.
///
/// This is exactly the extremal behaviour the upper-bound proof budgets for,
/// so it is the right adversary for measuring Theorem 4's worst-case shape
/// and Lemma 7's iteration count.
#[derive(Debug, Clone)]
pub struct ThresholdMatcher {
    /// Fraction of currently-fresh voters the matcher is willing to spend in
    /// a single window (1.0 = everything, the default).
    aggressiveness: f64,
    /// Fraction of the *initial* budget seeded as distinct bad votes during
    /// the first Step 1.1 window, polluting the voted set `S` before it is
    /// frozen at Step 1.2.
    seed_fraction: f64,
    seeded: bool,
    last_window: Option<(&'static str, Round)>,
}

impl ThresholdMatcher {
    /// A matcher that spends its whole remaining budget whenever useful,
    /// seeding half of it into `S` up front.
    pub fn new() -> Self {
        Self::with_tuning(1.0, 0.5)
    }

    /// A matcher spending at most a fraction of its fresh voters per window
    /// (for pacing ablations). No up-front seeding.
    ///
    /// # Panics
    /// Panics unless `0 < aggressiveness ≤ 1`.
    pub fn with_aggressiveness(aggressiveness: f64) -> Self {
        Self::with_tuning(aggressiveness, 0.0)
    }

    /// Full tuning: per-window spend fraction and up-front `S`-seeding
    /// fraction.
    ///
    /// # Panics
    /// Panics unless `0 < aggressiveness ≤ 1` and `0 ≤ seed_fraction ≤ 1`.
    pub fn with_tuning(aggressiveness: f64, seed_fraction: f64) -> Self {
        assert!(
            0.0 < aggressiveness && aggressiveness <= 1.0,
            "aggressiveness {aggressiveness} out of (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&seed_fraction),
            "seed_fraction {seed_fraction} out of [0, 1]"
        );
        ThresholdMatcher {
            aggressiveness,
            seed_fraction,
            seeded: false,
            last_window: None,
        }
    }
}

impl Default for ThresholdMatcher {
    fn default() -> Self {
        ThresholdMatcher::new()
    }
}

impl Adversary for ThresholdMatcher {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        // Per-player remaining vote budgets under the reader policy (the
        // only currency the honest readers will honor).
        let f_cap = ctx.view.tracker().policy().votes_per_player;
        let mut remaining: Vec<(distill_billboard::PlayerId, usize)> = ctx
            .dishonest
            .iter()
            .map(|&p| (p, f_cap.saturating_sub(ctx.view.votes_of(p).len())))
            .filter(|&(_, r)| r > 0)
            .collect();
        let total_budget: usize = remaining.iter().map(|&(_, r)| r).sum();
        if total_budget == 0 {
            return Vec::new();
        }

        let Some(threshold) = ctx.phase.survival_threshold else {
            // An un-thresholded window: Step 1.1. Seed distinct bad votes
            // once so the voted set S of Step 1.2 is polluted before the
            // honest readers freeze it.
            if !self.seeded && self.seed_fraction > 0.0 && ctx.phase.label == "distill.step1.1" {
                self.seeded = true;
                let bad = ctx.world.bad_objects();
                if bad.is_empty() {
                    return Vec::new();
                }
                let spend = ((total_budget as f64) * self.seed_fraction).floor() as usize;
                let mut posts = Vec::with_capacity(spend);
                let mut slot = 0usize;
                'seed: loop {
                    let mut progressed = false;
                    for entry in remaining.iter_mut() {
                        if posts.len() >= spend {
                            break 'seed;
                        }
                        if entry.1 > 0 {
                            entry.1 -= 1;
                            progressed = true;
                            posts.push(DishonestPost::vote(entry.0, bad[slot % bad.len()]));
                            slot += 1;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                return posts;
            }
            return Vec::new();
        };
        let key = (ctx.phase.label, ctx.phase.window_start);
        if self.last_window == Some(key) {
            return Vec::new(); // already serviced this window
        }
        self.last_window = Some(key);

        // Votes needed per object: "at least k₂/4" at Step 1.4 (admission),
        // "strictly more than n/(4c_t)" at Step 2.2 (survival). Matching the
        // stricter of the two (⌊thr⌋+1) satisfies both. Each of those votes
        // must come from a *distinct* player — honest readers count an
        // author's repeat votes for the same object once.
        let needed = (threshold.floor() as usize) + 1;
        let spend_cap = (((total_budget as f64) * self.aggressiveness).ceil() as usize).max(needed);

        // Targets: bad objects in the current candidate set (during Step 2),
        // or any bad objects (during Step 1.3 — C₀ admission counts votes
        // for arbitrary objects).
        let m = ctx.m();
        let targets: Vec<ObjectId> = if ctx.phase.label == "distill.refine" {
            ctx.phase
                .candidates
                .to_vec(m)
                .into_iter()
                .filter(|&o| !ctx.world.is_good(o))
                .collect()
        } else {
            ctx.world.bad_objects()
        };
        if targets.is_empty() {
            return Vec::new();
        }

        let mut posts = Vec::new();
        let mut spent = 0usize;
        let mut rotate = 0usize;
        for &target in &targets {
            if spent + needed > spend_cap {
                break;
            }
            // `needed` distinct players, rotating the start index so budget
            // drains evenly across the dishonest population.
            let len = remaining.len();
            let mut got = 0usize;
            let mut picked = Vec::with_capacity(needed);
            for k in 0..len {
                if got == needed {
                    break;
                }
                let idx = (rotate + k) % len;
                if remaining[idx].1 > 0 {
                    picked.push(idx);
                    got += 1;
                }
            }
            if got < needed {
                break; // not enough distinct players left
            }
            rotate = (rotate + needed) % len.max(1);
            for idx in picked {
                remaining[idx].1 -= 1;
                posts.push(DishonestPost::vote(remaining[idx].0, target));
                spent += 1;
            }
        }
        posts
    }

    fn name(&self) -> &'static str {
        "threshold-matcher"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule, World};

    #[test]
    fn distill_still_terminates_under_matcher() {
        let n = 64;
        let world = World::binary(n, 1, 3).unwrap();
        let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
        let config = SimConfig::new(n, 48, 11).with_stop(StopRule::all_satisfied(200_000));
        let result = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(ThresholdMatcher::new()),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied, "DISTILL must beat the matcher");
        assert_eq!(result.forged_rejected, 0);
    }

    #[test]
    fn matcher_spends_votes() {
        let n = 64;
        let world = World::binary(n, 1, 3).unwrap();
        let params = DistillParams::new(n, n, 0.75, world.beta()).unwrap();
        let config = SimConfig::new(n, 48, 11).with_stop(StopRule::all_satisfied(200_000));
        let result = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(ThresholdMatcher::new()),
        )
        .unwrap()
        .run()
        .unwrap();
        // The matcher should have produced posts beyond the honest ones:
        // honest posts ≤ total probes + pre-seeded votes.
        assert!(result.posts_total as u64 > result.total_probes() / 2);
    }

    #[test]
    fn pacing_variant_works() {
        let n = 32;
        let world = World::binary(n, 1, 9).unwrap();
        let params = DistillParams::new(n, n, 0.5, world.beta()).unwrap();
        let config = SimConfig::new(n, 16, 4).with_stop(StopRule::all_satisfied(400_000));
        let result = Engine::new(
            config,
            &world,
            Box::new(Distill::new(params)),
            Box::new(ThresholdMatcher::with_aggressiveness(0.25)),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn aggressiveness_validated() {
        let _ = ThresholdMatcher::with_aggressiveness(0.0);
    }
}
