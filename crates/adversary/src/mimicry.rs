//! The Theorem 2 symmetric-mimicry construction.

use distill_billboard::{PlayerId, ReportKind};
use distill_sim::{Adversary, AdversaryCtx, DishonestPost, SimError, World};

/// The instance family from the Theorem 2 lower-bound proof.
///
/// Players are partitioned into `1/α` groups of size `αn`, objects into
/// `1/β` groups of size `βm`. In instance `I_k` the good objects are exactly
/// object group `O_k` and the honest players are `P_k ∪ {0}`; every player
/// group `P_j` *behaves as if the instance were `I_j`* — reporting objects in
/// `O_j` as good — so the first `B = min(1/α, 1/β)` instances are mutually
/// indistinguishable to player 0 until it has probed an object from the
/// right group. Any algorithm therefore pays `Ω(B)` probes in expectation on
/// a uniformly random instance.
///
/// `MimicryInstance::build` materializes `I_0` relabeled so the honest group
/// occupies player ids `0..αn` and object group `O_0` occupies ids `0..βm`
/// (the engine requires honest players to be a prefix; identities carry no
/// information in the model, so this is without loss of generality).
#[derive(Debug, Clone)]
pub struct MimicryInstance {
    /// The world (good set = object group 0).
    pub world: World,
    /// Total players `n`.
    pub n: u32,
    /// Honest players (`n / groups_players`).
    pub n_honest: u32,
    /// Number of player groups `1/α`.
    pub groups_players: u32,
    /// Number of object groups `1/β`.
    pub groups_objects: u32,
}

impl MimicryInstance {
    /// Builds the instance for `n` players in `groups_players` groups and
    /// `m` objects in `groups_objects` groups.
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] unless `groups_players` divides `n` with a
    /// non-empty quotient, `groups_objects` divides `m` with a non-empty
    /// quotient, and both group counts are ≥ 1; `World::from_parts` failures
    /// propagate as-is.
    pub fn build(
        n: u32,
        m: u32,
        groups_players: u32,
        groups_objects: u32,
    ) -> Result<Self, SimError> {
        if groups_players < 1 || groups_objects < 1 {
            return Err(SimError::InvalidConfig(
                "mimicry needs at least one player group and one object group".into(),
            ));
        }
        if n < groups_players || m < groups_objects {
            return Err(SimError::InvalidConfig(format!(
                "every mimicry group must be non-empty: n={n} < groups_players={groups_players} \
                 or m={m} < groups_objects={groups_objects}"
            )));
        }
        if n % groups_players != 0 {
            return Err(SimError::InvalidConfig(format!(
                "groups_players {groups_players} must divide n {n}"
            )));
        }
        if m % groups_objects != 0 {
            return Err(SimError::InvalidConfig(format!(
                "groups_objects {groups_objects} must divide m {m}"
            )));
        }
        let group_m = m / groups_objects;
        let values: Vec<f64> = (0..m)
            .map(|o| if o < group_m { 1.0 } else { 0.0 })
            .collect();
        let world = World::from_parts(
            values,
            vec![1.0; m as usize],
            distill_sim::ObjectModel::LocalTesting { threshold: 0.5 },
        )?;
        Ok(MimicryInstance {
            world,
            n,
            n_honest: n / groups_players,
            groups_players,
            groups_objects,
        })
    }

    /// `B = min(1/α, 1/β)`: the number of mutually indistinguishable
    /// instances, hence the Ω(B) bound.
    pub fn b(&self) -> u32 {
        self.groups_players.min(self.groups_objects)
    }

    /// The object-group index a dishonest player mimics, or `None` for
    /// players in groups beyond `B` (which "simply don't ever report").
    pub fn object_group_of(&self, player: PlayerId) -> Option<u32> {
        if player.0 < self.n_honest {
            return None; // honest players are not mimics
        }
        let group_size = self.n_honest; // all player groups have size αn
        let player_group = 1 + (player.0 - self.n_honest) / group_size;
        if player_group < self.b().min(self.groups_objects) {
            Some(player_group)
        } else {
            None
        }
    }

    /// The object-id range of object group `g`.
    pub fn object_group_range(&self, g: u32) -> std::ops::Range<u32> {
        let size = self.world.m() / self.groups_objects;
        (g * size)..((g + 1) * size)
    }

    /// The adversary strategy for this instance.
    pub fn adversary(&self) -> Mimicry {
        Mimicry {
            instance: self.clone(),
            voted: Vec::new(),
        }
    }
}

/// The strategy of the Theorem 2 proof: each dishonest player follows the
/// honest protocol, except that its probe values are dictated by its group —
/// objects in `O_j` look good to group `P_j`.
///
/// Mechanically, each not-yet-"satisfied" mimic samples the public phase's
/// candidate set like an honest explorer; if it draws an object of its own
/// group it posts a positive report (its vote) and goes quiet — exactly when
/// an honest player in instance `I_j` would. Other draws produce negative
/// reports, keeping the billboard footprint symmetric. (The mimic does not
/// reproduce honest advice-probes; the instance's symmetry, which drives the
/// lower bound, comes from the voting pattern.)
#[derive(Debug, Clone)]
pub struct Mimicry {
    instance: MimicryInstance,
    voted: Vec<PlayerId>,
}

impl Adversary for Mimicry {
    fn on_round(&mut self, ctx: &mut AdversaryCtx<'_, '_>) -> Vec<DishonestPost> {
        let m = ctx.m();
        let mut posts = Vec::new();
        for &p in ctx.dishonest {
            let Some(group) = self.instance.object_group_of(p) else {
                continue; // silent group
            };
            if self.voted.contains(&p) {
                continue; // already "satisfied" in its imagined instance
            }
            let probe = ctx.phase.candidates.sample(m, ctx.rng);
            let range = self.instance.object_group_range(group);
            if range.contains(&probe.0) {
                posts.push(DishonestPost {
                    author: p,
                    object: probe,
                    value: 1.0,
                    kind: ReportKind::Positive,
                });
                self.voted.push(p);
            } else {
                // mimic an honest negative report; claimed value 0
                posts.push(DishonestPost {
                    author: p,
                    object: probe,
                    value: 0.0,
                    kind: ReportKind::Negative,
                });
            }
        }
        posts
    }

    fn name(&self) -> &'static str {
        "mimicry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distill_core::{Distill, DistillParams};
    use distill_sim::{Engine, SimConfig, StopRule};

    #[test]
    fn instance_layout() {
        let inst = MimicryInstance::build(16, 16, 4, 4).unwrap();
        assert_eq!(inst.n_honest, 4);
        assert_eq!(inst.b(), 4);
        assert_eq!(inst.world.good_count(), 4); // group 0 of 4 objects
        assert_eq!(inst.object_group_range(1), 4..8);
        // honest players have no mimic group
        assert_eq!(inst.object_group_of(PlayerId(0)), None);
        // dishonest players 4..8 form P_1
        assert_eq!(inst.object_group_of(PlayerId(4)), Some(1));
        assert_eq!(inst.object_group_of(PlayerId(7)), Some(1));
        assert_eq!(inst.object_group_of(PlayerId(8)), Some(2));
        // last group index = 3 < B=4 ⇒ still reports
        assert_eq!(inst.object_group_of(PlayerId(12)), Some(3));
    }

    #[test]
    fn beta_smaller_than_alpha_silences_extra_groups() {
        // 8 player groups, 2 object groups ⇒ B = 2; groups 2..8 silent.
        let inst = MimicryInstance::build(32, 16, 8, 2).unwrap();
        assert_eq!(inst.b(), 2);
        assert_eq!(inst.object_group_of(PlayerId(4)), Some(1)); // P_1 mimics O_1
        assert_eq!(inst.object_group_of(PlayerId(8)), None); // P_2 silent
    }

    #[test]
    fn bad_parameters_are_typed_errors() {
        for (n, m, gp, go) in [
            (10, 16, 3, 4), // gp does not divide n
            (16, 10, 4, 3), // go does not divide m
            (16, 16, 0, 4), // zero player groups
            (16, 16, 4, 0), // zero object groups
            (2, 16, 4, 4),  // empty player groups
            (16, 2, 4, 4),  // empty object groups
        ] {
            let err = MimicryInstance::build(n, m, gp, go).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidConfig(_)),
                "({n},{m},{gp},{go}) must be InvalidConfig, got {err}"
            );
        }
    }

    #[test]
    fn distill_terminates_on_mimicry_instance() {
        let inst = MimicryInstance::build(32, 32, 4, 4).unwrap();
        let alpha = 1.0 / 4.0;
        let params = DistillParams::new(32, 32, alpha, inst.world.beta()).unwrap();
        let config =
            SimConfig::new(32, inst.n_honest, 17).with_stop(StopRule::all_satisfied(500_000));
        let result = Engine::new(
            config,
            &inst.world,
            Box::new(Distill::new(params)),
            Box::new(inst.adversary()),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.all_satisfied);
    }
}
