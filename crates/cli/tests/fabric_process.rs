//! Process-level tests of the multi-process sweep fabric: real `distill-cli`
//! binaries sharing one on-disk lease queue across OS process boundaries.
//!
//! These complement the in-crate worker tests (which use an injected clock)
//! and the CI `cluster-crash` job (which uses literal `kill -9`): here,
//! worker loss is injected deterministically with `--fail-after-trials`, a
//! hook that makes the worker process exit mid-lease exactly as a SIGKILL
//! would — no checkpoint of the in-flight chunk, a dangling lease left in
//! the queue.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_distill-cli")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "distill-fabric-process-{name}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SPEC: &[&str] = &[
    "--n", "16", "--honest", "14", "--trials", "10", "--seed", "21",
];

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "{args:?} failed ({}):\n{}{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn reference_digests(dir: &Path) -> String {
    let out = dir.join("reference.digests");
    let mut args = vec!["sweep"];
    args.extend_from_slice(SPEC);
    let out_s = out.display().to_string();
    args.extend_from_slice(&["--out", &out_s]);
    run_ok(&args);
    std::fs::read_to_string(&out).unwrap()
}

/// The headline robustness property, across real process boundaries: every
/// worker of the first fleet dies mid-lease, the supervisor's restart
/// budget is already spent (so it exits incomplete, like a killed
/// supervisor would), and a second supervisor invocation resumes from the
/// files alone to a merged result set bit-identical to the uninterrupted
/// single-process reference.
#[test]
fn killed_workers_and_supervisor_restart_converge_bit_identically() {
    let dir = tmp_dir("crash");
    let reference = reference_digests(&dir);
    let queue = dir.join("sweep.queue");
    let queue_s = queue.display().to_string();
    let digests = dir.join("cluster.digests");
    let digests_s = digests.display().to_string();

    let supervise = |extra: &[&str]| -> std::process::Output {
        let mut args = vec!["sweep-supervise", "--queue", &queue_s];
        args.extend_from_slice(SPEC);
        args.extend_from_slice(&[
            "--workers",
            "2",
            "--chunk",
            "2",
            "--lease-ttl",
            "1",
            "--poll-ms",
            "10",
        ]);
        args.extend_from_slice(extra);
        Command::new(bin()).args(&args).output().unwrap()
    };

    // Round 1: every worker dies after 3 trials (mid-lease, no final
    // checkpoint for the in-flight chunk), and the zero restart budget
    // forces the supervisor to give up — the fabric is now a pile of
    // files: a queue with dangling leases and partial worker checkpoints.
    let round1 = supervise(&["--fail-after-trials", "3", "--max-restarts", "0"]);
    assert_eq!(
        round1.status.code(),
        Some(3),
        "an incomplete fabric must exit 3:\n{}{}",
        String::from_utf8_lossy(&round1.stdout),
        String::from_utf8_lossy(&round1.stderr)
    );

    // Round 2: a fresh supervisor (the "restarted" one) resumes from the
    // files. Workers wait out the ~1s dangling leases, reclaim, and drain
    // the queue.
    let round2 = supervise(&["--out", &digests_s]);
    assert!(
        round2.status.success(),
        "the resumed fabric must complete:\n{}{}",
        String::from_utf8_lossy(&round2.stdout),
        String::from_utf8_lossy(&round2.stderr)
    );
    let stdout = String::from_utf8_lossy(&round2.stdout);
    assert!(stdout.contains("10/10"), "all trials merged: {stdout}");

    assert_eq!(
        std::fs::read_to_string(&digests).unwrap(),
        reference,
        "kill + resume must reproduce the single-process digests bit-for-bit"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A healthy fleet (no injected failures) completes in one supervise call
/// and also matches the reference digests.
#[test]
fn healthy_fleet_matches_reference() {
    let dir = tmp_dir("healthy");
    let reference = reference_digests(&dir);
    let queue = dir.join("sweep.queue");
    let queue_s = queue.display().to_string();
    let digests = dir.join("cluster.digests");
    let digests_s = digests.display().to_string();
    let mut args = vec!["sweep-supervise", "--queue", &queue_s];
    args.extend_from_slice(SPEC);
    args.extend_from_slice(&[
        "--workers",
        "3",
        "--chunk",
        "2",
        "--poll-ms",
        "10",
        "--out",
        &digests_s,
    ]);
    let out = run_ok(&args);
    assert!(out.contains("10/10"), "{out}");
    assert_eq!(std::fs::read_to_string(&digests).unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// A lone `sweep-worker` process on a fresh queue drains it end to end —
/// the fabric degrades gracefully to single-process operation.
#[test]
fn single_worker_process_drains_the_queue() {
    let dir = tmp_dir("solo");
    let queue = dir.join("sweep.queue");
    let queue_s = queue.display().to_string();
    let mut args = vec!["sweep-worker", "--queue", &queue_s];
    args.extend_from_slice(SPEC);
    args.extend_from_slice(&["--chunk", "4"]);
    let out = run_ok(&args);
    assert!(out.contains("queue fully done"), "{out}");
    assert!(out.contains("true"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}
