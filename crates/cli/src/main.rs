//! `distill` — the command-line interface to the reproduction.
//!
//! ```sh
//! distill run --n 1024 --honest 922 --adversary threshold-matcher --trials 20
//! distill gauntlet --n 512
//! distill bounds --n 4096 --alpha 0.95
//! distill lemma9 25,23,22,18,14,7 --a 0.00193
//! distill help
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw, &["resume", "verify", "stream"]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::help());
            std::process::exit(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(output) => println!("{output}"),
        Err(commands::CliError::Quarantined { output, count }) => {
            // The sweep itself completed: print the report, then fail with a
            // distinct exit code so CI distinguishes "quarantined trials"
            // from hard errors.
            println!("{output}");
            eprintln!(
                "error: {count} trial(s) quarantined (replay records in the quarantine file)"
            );
            std::process::exit(3);
        }
        Err(commands::CliError::Regression { output, count }) => {
            // The diff itself completed: print the verdict table, then fail
            // with a distinct exit code so the perf-trend job distinguishes
            // "bench regressed" from hard errors.
            println!("{output}");
            eprintln!("error: {count} bench(es) regressed past the tolerance band");
            std::process::exit(4);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
