//! CLI commands. Each command builds its output as a `String` so the whole
//! surface is unit-testable without capturing stdout.

use crate::args::{ArgError, Args};
use distill_adversary::{
    gauntlet, AdviceBait, BallotStuffer, Collusive, Flooder, Slander, ThresholdMatcher, UniformBad,
};
use distill_analysis::{bounds, fmt_f, lemma9, Summary, Table};
use distill_core::{Balance, Distill, DistillParams, GuessAlpha, RandomProbing, ThreePhase};
use distill_sim::{
    player_count, run_trials_scoped, run_trials_threaded, Adversary, Cohort, Engine, FaultPlan,
    NullAdversary, SimConfig, StopRule, World,
};

/// A command failure, rendered to the user.
#[derive(Debug)]
pub enum CliError {
    /// Argument problems.
    Args(ArgError),
    /// Anything else (bad parameter combinations, engine setup failures).
    Message(String),
    /// The sweep finished but quarantined trials; `main` prints the report
    /// and exits with a distinct nonzero code so CI catches partial sweeps.
    Quarantined {
        /// The full sweep report (printed to stdout before the error).
        output: String,
        /// How many trials ended quarantined.
        count: usize,
    },
    /// `bench-store diff` found perf regressions; `main` prints the full
    /// verdict table and exits with a distinct nonzero code so the CI
    /// perf-trend job fails visibly but distinguishably from hard errors.
    Regression {
        /// The full diff report (printed to stdout before the error).
        output: String,
        /// How many benches regressed past the tolerance band.
        count: usize,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Message(m) => f.write_str(m),
            CliError::Quarantined { count, .. } => {
                write!(
                    f,
                    "{count} trial(s) quarantined (replay records in the quarantine file)"
                )
            }
            CliError::Regression { count, .. } => {
                write!(
                    f,
                    "{count} bench(es) regressed past the tolerance band vs the stored baseline"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Summary for CLI tables, total over empty inputs: a sample with no data
/// yields all-NaN fields, which `fmt_f` renders as `-` (missing cells)
/// instead of aborting the command.
fn summary_or_blank(xs: &[f64]) -> Summary {
    Summary::of(xs).unwrap_or(Summary {
        count: 0,
        mean: f64::NAN,
        std_dev: f64::NAN,
        min: f64::NAN,
        max: f64::NAN,
        median: f64::NAN,
    })
}

fn err(msg: impl Into<String>) -> CliError {
    CliError::Message(msg.into())
}

/// The help text.
pub fn help() -> String {
    "\
distill — reproduction of 'Adaptive Collaboration in Peer-to-Peer Systems' (ICDCS 2005)

USAGE:
    distill <command> [flags]

COMMANDS:
    run        simulate one configuration over several trials
    sweep      crash-safe supervised `run`: checkpoint/resume, panic
               quarantine, retries, watchdog timeouts; --stream for
               O(1)-memory aggregation of huge sweeps
    sweep-worker
               one multi-process fabric worker: claim chunked trial ranges
               from the shared --queue under heartbeat-renewed leases
    sweep-supervise
               dumb supervisor loop: spawn --workers sweep-worker processes
               on one --queue, restart dead ones, merge their checkpoints
               by set-union when the queue drains (all state in files —
               kill -9 anything and re-run to resume)
    gauntlet   run one algorithm against every adversary strategy
    bounds     evaluate the paper's bound formulas for given parameters
    lemma9     check Lemma 9 (original and corrected) on a sequence
    meanfield  predicted satisfaction dynamics of the baselines
    async      run the asynchronous model of [1] under a chosen schedule
               (--schedule round-robin|random|isolate|starve)
    service-stress
               drive the concurrent billboard service: producer threads,
               one applier, epoch-snapshot readers
    bench-store
               persistent experiment store: append BENCH_*.json runs,
               query history, diff against the per-bench baseline
    help       this text

RUN FLAGS (defaults in parentheses):
    --n <u64>            players (256; ids are u32, so at most 4294967295)
    --m <u32>            objects (= n)
    --honest <u32>       honest players (90% of n)
    --goods <u32>        good objects (1)
    --algorithm <name>   distill | distill-hp | guess-alpha | balance |
                         random | three-phase   (distill)
    --adversary <name>   null | uniform-bad | collusive | threshold-matcher |
                         slander | ballot-stuffer | advice-bait | flooder  (uniform-bad)
    --trials <usize>     independent trials (10)
    --seed <u64>         master seed (0)
    --f <usize>          votes per player (1)
    --error-rate <f64>   honest erroneous-vote probability (0)
    --max-rounds <u64>   safety cap (1000000)
    --drop-rate <f64>    fault injection: honest-post drop probability (0)
    --view-lag <u64>     fault injection: honest read staleness in rounds (0)
    --crash-rate <f64>   fault injection: P(player ever crash-stops) (0)
    --crash-window <u64> fault injection: crash rounds drawn from [0, w) (64)
    --recovery-rate <f64> fault injection: per-round rejoin probability (0)

SWEEP FLAGS (all RUN FLAGS, plus):
    --checkpoint <path>      write an atomic, checksummed progress snapshot
    --checkpoint-every <k>   snapshot after every k completed trials (8)
    --resume                 skip trials already in the checkpoint
    --trial-timeout <secs>   watchdog per-attempt wall-clock limit (0 = off)
    --max-retries <u32>      retries per trial after a failure (2)
    --quarantine <path>      failure records (default <checkpoint>.quarantine.jsonl)
    --threads <usize>        worker threads (available parallelism)
    --out <path>             per-trial result digests, for diffing runs
    --stream                 O(1)-memory streaming aggregation (Welford
                             moments + GK quantile sketch, rank error 0.5%)
                             instead of retaining every result; excludes
                             --checkpoint/--resume/--out
    exits 3 when any trial ends quarantined

SWEEP-WORKER FLAGS (all RUN FLAGS, plus):
    --queue <path>           the shared on-disk lease queue (required)
    --worker-id <u64>        this worker's identity in leases (0)
    --chunk <u64>            trials per leased chunk (16)
    --lease-ttl <secs>       lease time-to-live; renewed at half-life (30)
    --max-claims <u32>       cross-process claim budget per chunk (2)
    --max-retries / --trial-timeout / --checkpoint-every as in sweep
    --quarantine <path>      failure records (<queue>.worker<id>.quarantine.jsonl)
    --poll-ms <u64>          idle backoff while the queue is busy (50)
    exits 0 even with quarantined trials: the supervisor's merge decides

SWEEP-SUPERVISE FLAGS (all SWEEP-WORKER FLAGS except --worker-id, plus):
    --workers <u64>          worker processes to keep alive (3)
    --max-restarts <u64>     total restart budget across the fleet (16)
    --out <path>             merged per-trial digests, diffable against a
                             single-process `sweep --out` reference
    --merged <path>          write the merged checkpoint itself
    exits 3 when the merged result set is missing trials

SERVICE-STRESS FLAGS (defaults in parentheses):
    --producers <u32>       concurrent submitting threads (8)
    --posts <u64>           total posts across all producers (1000000)
    --batch <usize>         drafts per submitted batch (1024)
    --readers <u32>         concurrent epoch-snapshot readers (2)
    --n <u32>               players in the universe (256)
    --m <u32>               objects in the universe (1024)
    --posts-per-round <u64> service timestamp granularity (256)
    --channel <usize>       bounded-channel capacity in batches (256)
    --publish-every <u64>   epochs published every k applied batches (8)
    --verify                replay the merged log sequentially and fail
                            unless the concurrent end state is identical

BENCH-STORE (append | query | diff; all take --store <path>, --format table|json):
    append --json <f[,f...]> --commit <label> [--timestamp <secs>]
               set-union the runs into the store (atomic, idempotent)
    query  [--bench <id>]
               list stored records plus per-bench min-history statistics
    diff   --json <f[,f...]> [--tolerance <frac>] [--inject-regression <x>]
               gate the run against the stored per-bench best: regressed
               iff BOTH min_ns and median_ns exceed baseline*(1+tolerance)
               (0.5); value rows are never compared in ns terms; exits 4
               on regression. --inject-regression scales timed rows by x
               (CI self-test hook, like sweep's --inject-panic)

BOUNDS FLAGS: --n --m --alpha --beta --q0 --eps
LEMMA9:       distill lemma9 <c0,c1,c2,...> --a <f64 in (0,1)>
"
    .to_string()
}

fn make_cohort(
    name: &str,
    n: u32,
    m: u32,
    alpha: f64,
    beta: f64,
) -> Result<Box<dyn Cohort>, CliError> {
    Ok(match name {
        "distill" => Box::new(Distill::new(
            DistillParams::new(n, m, alpha, beta).map_err(|e| err(e.to_string()))?,
        )),
        "distill-hp" => Box::new(Distill::new(
            DistillParams::high_probability(n, m, alpha, beta, 1.0)
                .map_err(|e| err(e.to_string()))?,
        )),
        "guess-alpha" => {
            Box::new(GuessAlpha::new(n, m, beta, 0.5, 0.5).map_err(|e| err(e.to_string()))?)
        }
        "balance" => Box::new(Balance::new()),
        "random" => Box::new(RandomProbing::new()),
        "three-phase" => Box::new(ThreePhase::new(n)),
        other => {
            return Err(err(format!(
                "unknown algorithm {other:?} (try `distill help`)"
            )))
        }
    })
}

fn make_adversary(name: &str) -> Result<Box<dyn Adversary>, CliError> {
    Ok(match name {
        "null" => Box::new(NullAdversary),
        "uniform-bad" => Box::new(UniformBad::new()),
        "collusive" => Box::<Collusive>::default(),
        "threshold-matcher" => Box::new(ThresholdMatcher::new()),
        "slander" => Box::new(Slander::new()),
        "ballot-stuffer" => Box::<BallotStuffer>::default(),
        "advice-bait" => Box::new(AdviceBait::new()),
        "flooder" => Box::<Flooder>::default(),
        other => {
            return Err(err(format!(
                "unknown adversary {other:?} (try `distill help`)"
            )))
        }
    })
}

const RUN_FLAGS: &[&str] = &[
    "n",
    "m",
    "honest",
    "goods",
    "algorithm",
    "adversary",
    "trials",
    "seed",
    "f",
    "error-rate",
    "max-rounds",
    "drop-rate",
    "view-lag",
    "crash-rate",
    "crash-window",
    "recovery-rate",
];

/// `distill run` — simulate one configuration.
pub fn run(args: &Args) -> Result<String, CliError> {
    args.ensure_known(RUN_FLAGS)?;
    // Accept the full u64 range on the command line, then funnel through the
    // one sanctioned id-space check so an oversize population fails with the
    // typed message instead of a parse error (or a silent truncation).
    let n: u32 = player_count(args.get_or("n", 256)?).map_err(|e| err(e.to_string()))?;
    let m: u32 = args.get_or("m", n)?;
    let default_honest = ((f64::from(n)) * 0.9).round() as u32;
    let honest: u32 = args.get_or("honest", default_honest)?;
    let goods: u32 = args.get_or("goods", 1)?;
    let trials: usize = args.get_or("trials", 10)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let f: usize = args.get_or("f", 1)?;
    let error_rate: f64 = args.get_or("error-rate", 0.0)?;
    let max_rounds: u64 = args.get_or("max-rounds", 1_000_000)?;
    let faults = FaultPlan::none()
        .with_drop_rate(args.get_or("drop-rate", 0.0)?)
        .with_view_lag(args.get_or("view-lag", 0)?)
        .with_crash_rate(args.get_or("crash-rate", 0.0)?)
        .with_crash_window(args.get_or("crash-window", 64)?)
        .with_recovery_rate(args.get_or("recovery-rate", 0.0)?);
    faults
        .validate()
        .map_err(|msg| err(format!("fault plan: {msg}")))?;
    let algorithm = args.str_or("algorithm", "distill");
    let adversary_name = args.str_or("adversary", "uniform-bad");
    if honest == 0 || honest > n {
        return Err(err(format!("--honest {honest} must be in 1..={n}")));
    }
    if goods == 0 || goods > m {
        return Err(err(format!("--goods {goods} must be in 1..={m}")));
    }
    let alpha = f64::from(honest) / f64::from(n);
    // Validate names and parameters once, up front, so trial workers can't
    // hit a construction failure mid-run.
    make_cohort(&algorithm, n, m, alpha, f64::from(goods) / f64::from(m))?;
    make_adversary(&adversary_name)?;

    // Per-trial worlds are built up front so each worker can keep one engine
    // arena alive for its whole share of the trials (`Engine::reset_with_world`
    // swaps the world in without reallocating the board/tracker buffers).
    let worlds: Vec<World> = (0..trials as u64)
        .map(|t| {
            World::binary(m, goods, seed.wrapping_add(1_000_003).wrapping_add(t))
                .expect("validated world parameters")
        })
        .collect();
    let results = run_trials_scoped(
        trials,
        num_threads(),
        || None,
        |slot: &mut Option<Engine<'_>>, t| {
            let world = &worlds[t as usize];
            let cohort =
                make_cohort(&algorithm, n, m, alpha, world.beta()).expect("validated algorithm");
            let adversary = make_adversary(&adversary_name).expect("validated adversary");
            let trial_seed = seed.wrapping_add(t);
            let engine = match slot {
                Some(engine) => {
                    engine
                        .reset_with_world(trial_seed, world, cohort, adversary)
                        .expect("validated configuration");
                    engine
                }
                None => {
                    let config = SimConfig::new(n, honest, trial_seed)
                        .with_policy(distill_billboard::VotePolicy::multi_vote(f))
                        .with_honest_error_rate(error_rate)
                        .with_faults(faults)
                        .with_stop(StopRule::all_satisfied(max_rounds));
                    slot.insert(
                        Engine::new(config, world, cohort, adversary)
                            .expect("validated configuration"),
                    )
                }
            };
            engine.run_mut().expect("engine run on validated inputs")
        },
    );

    let costs: Vec<f64> = results.iter().map(|r| r.mean_probes()).collect();
    let rounds: Vec<f64> = results.iter().map(|r| r.rounds as f64).collect();
    let done = results.iter().filter(|r| r.all_satisfied).count();
    let cost = summary_or_blank(&costs);
    let rds = summary_or_blank(&rounds);

    let mut table = Table::new(
        format!(
            "{algorithm} vs {adversary_name} — n={n} m={m} honest={honest} (alpha={alpha:.3}) \
             goods={goods} f={f} trials={trials}"
        ),
        &["metric", "mean", "min", "max"],
    );
    table.row_owned(vec![
        "individual cost (probes)".into(),
        fmt_f(cost.mean),
        fmt_f(cost.min),
        fmt_f(cost.max),
    ]);
    table.row_owned(vec![
        "rounds".into(),
        fmt_f(rds.mean),
        fmt_f(rds.min),
        fmt_f(rds.max),
    ]);
    table.row_owned(vec![
        "trials fully satisfied".into(),
        format!("{done}/{trials}"),
        "-".into(),
        "-".into(),
    ]);
    if !faults.is_noop() {
        let survivor = summary_or_blank(
            &results
                .iter()
                .map(|r| r.mean_probes_survivors())
                .collect::<Vec<f64>>(),
        );
        table.row_owned(vec![
            "survivor cost (probes)".into(),
            fmt_f(survivor.mean),
            fmt_f(survivor.min),
            fmt_f(survivor.max),
        ]);
        type CounterGet = fn(&distill_sim::FaultCounters) -> u64;
        let counter_rows: [(&str, CounterGet); 3] = [
            ("posts dropped", |c| c.posts_dropped),
            ("crashes", |c| c.crashes),
            ("recoveries", |c| c.recoveries),
        ];
        for (label, get) in counter_rows {
            let xs: Vec<f64> = results.iter().map(|r| get(&r.faults) as f64).collect();
            let s = summary_or_blank(&xs);
            table.row_owned(vec![
                label.into(),
                fmt_f(s.mean),
                fmt_f(s.min),
                fmt_f(s.max),
            ]);
        }
    }
    let beta = f64::from(goods) / f64::from(m);
    let bound = bounds::distill_upper(f64::from(n), alpha, beta);
    let mut out = format!(
        "{table}\nTheorem 4 shape for these parameters: {} (measured/bound = {})\n",
        fmt_f(bound),
        fmt_f(cost.mean / bound)
    );
    // Crash-stop churn shrinks the honest fraction to α′ = α(1 − crash):
    // the degradation experiments compare survivor cost to the bound there.
    if faults.crash_rate > 0.0 && faults.recovery_rate == 0.0 {
        let alpha_eff = alpha * (1.0 - faults.crash_rate);
        if alpha_eff > 0.0 {
            let bound_eff = bounds::distill_upper(f64::from(n), alpha_eff, beta);
            out.push_str(&format!(
                "Theorem 4 shape at effective alpha' = {alpha_eff:.3}: {}\n",
                fmt_f(bound_eff)
            ));
        }
    }
    Ok(out)
}

/// Rank-error target for `sweep --stream`'s quantile sketch: every reported
/// percentile is within 0.5% of the trial count of the exact rank
/// (documented in EXPERIMENTS.md P5).
const STREAM_EPSILON: f64 = 0.005;

const SWEEP_FLAGS: &[&str] = &[
    // everything `run` takes…
    "n",
    "m",
    "honest",
    "goods",
    "algorithm",
    "adversary",
    "trials",
    "seed",
    "f",
    "error-rate",
    "max-rounds",
    "drop-rate",
    "view-lag",
    "crash-rate",
    "crash-window",
    "recovery-rate",
    // …plus the crash-safety surface
    "checkpoint",
    "checkpoint-every",
    "trial-timeout",
    "max-retries",
    "quarantine",
    "threads",
    "out",
    "inject-panic",
    "resume",
    "stream",
];

const SWEEP_WORKER_FLAGS: &[&str] = &[
    // the simulation spec (must match the supervisor's exactly — it is
    // hashed into the queue fingerprint)…
    "n",
    "m",
    "honest",
    "goods",
    "algorithm",
    "adversary",
    "trials",
    "seed",
    "f",
    "error-rate",
    "max-rounds",
    "drop-rate",
    "view-lag",
    "crash-rate",
    "crash-window",
    "recovery-rate",
    "inject-panic",
    // …plus the fabric surface
    "queue",
    "worker-id",
    "chunk",
    "lease-ttl",
    "max-claims",
    "max-retries",
    "trial-timeout",
    "quarantine",
    "checkpoint-every",
    "poll-ms",
    "stop-after-chunks",
    "fail-after-trials",
];

const SWEEP_SUPERVISE_FLAGS: &[&str] = &[
    // the simulation spec (forwarded verbatim to every worker)…
    "n",
    "m",
    "honest",
    "goods",
    "algorithm",
    "adversary",
    "trials",
    "seed",
    "f",
    "error-rate",
    "max-rounds",
    "drop-rate",
    "view-lag",
    "crash-rate",
    "crash-window",
    "recovery-rate",
    "inject-panic",
    // …worker passthrough…
    "queue",
    "chunk",
    "lease-ttl",
    "max-claims",
    "max-retries",
    "trial-timeout",
    "checkpoint-every",
    // …and the fleet surface
    "workers",
    "max-restarts",
    "poll-ms",
    "out",
    "merged",
    // test/CI hooks, forwarded to every worker (mirrors --inject-panic)
    "stop-after-chunks",
    "fail-after-trials",
];

/// A fully-validated, owned trial spec for the supervised sweep runner:
/// everything `run` does per trial, as a pure function of the trial index.
struct SweepSpec {
    n: u32,
    m: u32,
    honest: u32,
    goods: u32,
    algorithm: String,
    adversary: String,
    seed: u64,
    f: usize,
    error_rate: f64,
    max_rounds: u64,
    faults: FaultPlan,
    /// Deliberately panic on this trial index (testing/CI hook).
    inject_panic: Option<u64>,
}

impl distill_harness::TrialSpec for SweepSpec {
    fn run_trial(&self, trial: u64) -> distill_sim::SimResult {
        assert!(
            self.inject_panic != Some(trial),
            "injected panic at trial {trial} (--inject-panic)"
        );
        // Same seed derivations as `run`, so a sweep of N trials reproduces
        // `run --trials N` exactly.
        let world = World::binary(
            self.m,
            self.goods,
            self.seed.wrapping_add(1_000_003).wrapping_add(trial),
        )
        .expect("validated world");
        let alpha = f64::from(self.honest) / f64::from(self.n);
        let cohort = make_cohort(&self.algorithm, self.n, self.m, alpha, world.beta())
            .expect("validated algorithm");
        let adversary = make_adversary(&self.adversary).expect("validated adversary");
        let config = SimConfig::new(self.n, self.honest, self.seed(trial))
            .with_policy(distill_billboard::VotePolicy::multi_vote(self.f))
            .with_honest_error_rate(self.error_rate)
            .with_faults(self.faults)
            .with_stop(StopRule::all_satisfied(self.max_rounds));
        Engine::new(config, &world, cohort, adversary)
            .expect("validated configuration")
            .run()
            .expect("engine run on validated inputs")
    }

    fn seed(&self, trial: u64) -> u64 {
        self.seed.wrapping_add(trial)
    }

    fn describe(&self) -> String {
        // Canonical config string: its hash is the checkpoint fingerprint,
        // so every parameter that changes trial results must appear here.
        format!(
            "sweep v1 n={} m={} honest={} goods={} algorithm={} adversary={} seed={} f={} \
             error-rate={} max-rounds={} faults={:?} inject-panic={:?}",
            self.n,
            self.m,
            self.honest,
            self.goods,
            self.algorithm,
            self.adversary,
            self.seed,
            self.f,
            self.error_rate,
            self.max_rounds,
            self.faults,
            self.inject_panic,
        )
    }
}

/// Parses the simulation-spec surface shared by `sweep`, `sweep-worker`,
/// and `sweep-supervise` into a fully-validated [`SweepSpec`] plus the
/// trial count. Everything that changes trial results flows through here,
/// so all three entry points agree on the fingerprint by construction.
fn parse_sweep_spec(args: &Args) -> Result<(SweepSpec, u64), CliError> {
    let n: u32 = player_count(args.get_or("n", 256)?).map_err(|e| err(e.to_string()))?;
    let m: u32 = args.get_or("m", n)?;
    let default_honest = ((f64::from(n)) * 0.9).round() as u32;
    let honest: u32 = args.get_or("honest", default_honest)?;
    let goods: u32 = args.get_or("goods", 1)?;
    let trials: u64 = args.get_or("trials", 10)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let f: usize = args.get_or("f", 1)?;
    let error_rate: f64 = args.get_or("error-rate", 0.0)?;
    let max_rounds: u64 = args.get_or("max-rounds", 1_000_000)?;
    let faults = FaultPlan::none()
        .with_drop_rate(args.get_or("drop-rate", 0.0)?)
        .with_view_lag(args.get_or("view-lag", 0)?)
        .with_crash_rate(args.get_or("crash-rate", 0.0)?)
        .with_crash_window(args.get_or("crash-window", 64)?)
        .with_recovery_rate(args.get_or("recovery-rate", 0.0)?);
    faults
        .validate()
        .map_err(|msg| err(format!("fault plan: {msg}")))?;
    let algorithm = args.str_or("algorithm", "distill");
    let adversary_name = args.str_or("adversary", "uniform-bad");
    if honest == 0 || honest > n {
        return Err(err(format!("--honest {honest} must be in 1..={n}")));
    }
    if goods == 0 || goods > m {
        return Err(err(format!("--goods {goods} must be in 1..={m}")));
    }
    if trials == 0 {
        return Err(err("--trials must be at least 1"));
    }
    let alpha = f64::from(honest) / f64::from(n);
    // Validate names and parameters once, up front, so trial workers can't
    // hit a construction failure mid-run (`SweepSpec::run_trial` relies on
    // this when it `expect`s).
    make_cohort(&algorithm, n, m, alpha, f64::from(goods) / f64::from(m))?;
    make_adversary(&adversary_name)?;
    let inject_panic = match args.flags.get("inject-panic") {
        None => None,
        Some(_) => Some(args.get_or("inject-panic", 0u64)?),
    };
    Ok((
        SweepSpec {
            n,
            m,
            honest,
            goods,
            algorithm,
            adversary: adversary_name,
            seed,
            f,
            error_rate,
            max_rounds,
            faults,
            inject_panic,
        },
        trials,
    ))
}

/// `distill sweep` — the crash-safe supervised variant of `run`:
/// checkpoint/resume, per-trial panic isolation with quarantine, retries,
/// and watchdog timeouts. `--stream` trades the retained per-trial results
/// for O(1)-memory streaming aggregation.
pub fn sweep(args: &Args) -> Result<String, CliError> {
    args.ensure_known(SWEEP_FLAGS)?;
    let (spec, trials) = parse_sweep_spec(args)?;
    let n = spec.n;
    let m = spec.m;
    let honest = spec.honest;
    let goods = spec.goods;
    let f = spec.f;
    let algorithm = spec.algorithm.clone();
    let adversary_name = spec.adversary.clone();
    let alpha = f64::from(honest) / f64::from(n);

    let checkpoint = args.flags.get("checkpoint").map(std::path::PathBuf::from);
    let resume = args.has("resume");
    if resume && checkpoint.is_none() {
        return Err(err("--resume requires --checkpoint <path>"));
    }
    let trial_timeout_secs: f64 = args.get_or("trial-timeout", 0.0)?;
    if trial_timeout_secs < 0.0 || !trial_timeout_secs.is_finite() {
        return Err(err(
            "--trial-timeout must be a finite number of seconds >= 0",
        ));
    }
    let quarantine = args
        .flags
        .get("quarantine")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            checkpoint.as_ref().map(|p| {
                let mut q = p.as_os_str().to_owned();
                q.push(".quarantine.jsonl");
                std::path::PathBuf::from(q)
            })
        });
    let out_path = args.flags.get("out").map(std::path::PathBuf::from);
    let stream = args.has("stream");
    if stream {
        if checkpoint.is_some() || resume {
            return Err(err(
                "--stream keeps no per-trial results, so it cannot checkpoint or resume \
                 (use the multi-process fabric for restartable big sweeps)",
            ));
        }
        if out_path.is_some() {
            return Err(err(
                "--stream keeps no per-trial results, so --out digests are unavailable",
            ));
        }
    }

    let spec = std::sync::Arc::new(spec);
    let config = distill_harness::SweepConfig {
        trials,
        threads: args.get_or("threads", num_threads())?,
        checkpoint,
        checkpoint_every: args.get_or("checkpoint-every", 8)?,
        resume,
        quarantine: quarantine.clone(),
        policy: distill_harness::SupervisorPolicy {
            max_retries: args.get_or("max-retries", 2)?,
            trial_timeout: (trial_timeout_secs > 0.0)
                .then(|| std::time::Duration::from_secs_f64(trial_timeout_secs)),
            ..distill_harness::SupervisorPolicy::default()
        },
        stop_after: None,
        retain_results: !stream,
    };
    // Streaming mode folds each trial's individual cost into O(1)-memory
    // aggregates (Welford moments + a GK quantile sketch at rank error
    // STREAM_EPSILON) instead of retaining every `SimResult`.
    let mut streamed = distill_analysis::StreamingSummary::new(STREAM_EPSILON);
    let mut satisfied = 0u64;
    let report = if stream {
        let mut fold = |_trial: u64, r: &distill_sim::SimResult| {
            streamed.push(r.mean_probes());
            if r.all_satisfied {
                satisfied += 1;
            }
        };
        distill_harness::run_sweep_with(spec, &config, Some(&mut fold))
            .map_err(|e| err(e.to_string()))?
    } else {
        distill_harness::run_sweep(spec, &config).map_err(|e| err(e.to_string()))?
    };

    // Canonical per-trial digest file: one line per completed trial with the
    // FNV-1a hash of its encoded `SimResult`, so CI can diff a resumed sweep
    // against an uninterrupted reference byte-for-byte.
    if let Some(path) = &out_path {
        let mut text = String::new();
        for (trial, result) in &report.results {
            let mut w = distill_harness::Writer::new();
            distill_harness::checkpoint::encode_sim_result(&mut w, result);
            let digest = distill_harness::fnv1a64(&w.into_bytes());
            text.push_str(&format!("trial {trial} {digest:016x}\n"));
        }
        std::fs::write(path, text).map_err(|e| err(format!("--out {}: {e}", path.display())))?;
    }

    let mut table = Table::new(
        format!(
            "sweep{}: {algorithm} vs {adversary_name} — n={n} m={m} honest={honest} \
             (alpha={alpha:.3}) goods={goods} f={f} trials={trials}",
            if stream { " (streaming)" } else { "" }
        ),
        &["metric", "value"],
    );
    table.row_owned(vec![
        "completed".into(),
        format!("{}/{trials}", report.completed),
    ]);
    table.row_owned(vec![
        "resumed from checkpoint".into(),
        report.resumed.to_string(),
    ]);
    table.row_owned(vec![
        "checkpoints written".into(),
        report.checkpoints_written.to_string(),
    ]);
    table.row_owned(vec![
        "quarantined".into(),
        report.quarantined.len().to_string(),
    ]);
    if stream {
        let m = streamed.moments();
        let p = |q: f64| fmt_f(streamed.quantile(q).unwrap_or(f64::NAN));
        table.row_owned(vec![
            "mean individual cost".into(),
            fmt_f(m.mean().unwrap_or(f64::NAN)),
        ]);
        table.row_owned(vec![
            "cost std dev".into(),
            fmt_f(m.std_dev().unwrap_or(f64::NAN)),
        ]);
        table.row_owned(vec![
            "cost min / max".into(),
            format!(
                "{} / {}",
                fmt_f(m.min().unwrap_or(f64::NAN)),
                fmt_f(m.max().unwrap_or(f64::NAN))
            ),
        ]);
        table.row_owned(vec![
            format!("cost p50/p90/p99 (rank err <= {STREAM_EPSILON}n)"),
            format!("{} / {} / {}", p(0.5), p(0.9), p(0.99)),
        ]);
        table.row_owned(vec![
            "sketch tuples held".into(),
            streamed.sketch().entries_len().to_string(),
        ]);
        table.row_owned(vec![
            "trials fully satisfied".into(),
            format!("{satisfied}/{}", report.completed),
        ]);
    } else {
        let costs: Vec<f64> = report
            .results
            .iter()
            .map(|(_, r)| r.mean_probes())
            .collect();
        let cost = summary_or_blank(&costs);
        let done = report
            .results
            .iter()
            .filter(|(_, r)| r.all_satisfied)
            .count();
        table.row_owned(vec!["mean individual cost".into(), fmt_f(cost.mean)]);
        table.row_owned(vec![
            "trials fully satisfied".into(),
            format!("{done}/{}", report.results.len()),
        ]);
    }
    let mut output = table.render();
    for q in &report.quarantined {
        output.push_str(&format!(
            "\nquarantined trial {} (seed {}): {} after {} attempt(s)",
            q.trial, q.seed, q.failure, q.attempts
        ));
    }
    if !report.quarantined.is_empty() {
        if let Some(qpath) = &quarantine {
            output.push_str(&format!("\nreplay records: {}", qpath.display()));
        }
        return Err(CliError::Quarantined {
            output,
            count: report.quarantined.len(),
        });
    }
    Ok(output)
}

/// The `--chunk` / `--lease-ttl` / retry / poll surface shared by the two
/// fabric entry points, parsed and validated once.
struct FabricFlags {
    chunk: u64,
    max_claims: u32,
    lease_ttl_secs: f64,
    lease_ttl_ms: u64,
    checkpoint_every: u64,
    trial_timeout_secs: f64,
    policy: distill_harness::SupervisorPolicy,
    poll: std::time::Duration,
}

fn parse_fabric_flags(args: &Args) -> Result<FabricFlags, CliError> {
    let chunk: u64 = args.get_or("chunk", 16)?;
    if chunk == 0 {
        return Err(err("--chunk must be at least 1 trial"));
    }
    let max_claims: u32 = args.get_or("max-claims", 2)?;
    if max_claims == 0 {
        return Err(err("--max-claims must be at least 1"));
    }
    let lease_ttl_secs: f64 = args.get_or("lease-ttl", 30.0)?;
    if !lease_ttl_secs.is_finite() || lease_ttl_secs <= 0.0 {
        return Err(err("--lease-ttl must be a finite number of seconds > 0"));
    }
    let lease_ttl_ms = u64::try_from(
        std::time::Duration::from_secs_f64(lease_ttl_secs)
            .as_millis()
            .max(1),
    )
    .unwrap_or(u64::MAX);
    let checkpoint_every: u64 = args.get_or("checkpoint-every", 8)?;
    let trial_timeout_secs: f64 = args.get_or("trial-timeout", 0.0)?;
    if trial_timeout_secs < 0.0 || !trial_timeout_secs.is_finite() {
        return Err(err(
            "--trial-timeout must be a finite number of seconds >= 0",
        ));
    }
    let policy = distill_harness::SupervisorPolicy {
        max_retries: args.get_or("max-retries", 2)?,
        trial_timeout: (trial_timeout_secs > 0.0)
            .then(|| std::time::Duration::from_secs_f64(trial_timeout_secs)),
        ..distill_harness::SupervisorPolicy::default()
    };
    let poll = std::time::Duration::from_millis(args.get_or("poll-ms", 50)?);
    Ok(FabricFlags {
        chunk,
        max_claims,
        lease_ttl_secs,
        lease_ttl_ms,
        checkpoint_every,
        trial_timeout_secs,
        policy,
        poll,
    })
}

/// `distill sweep-worker` — one fabric worker process: claims chunked trial
/// ranges from the shared on-disk lease queue under a heartbeat-renewed
/// lease, runs them supervised, and checkpoints its own results. Safe to
/// run any number of these concurrently on the same `--queue`; kill -9 at
/// any point never loses or double-counts a trial (an expired lease is
/// reclaimed and re-run, and the set-union merge deduplicates bit-exact
/// duplicates).
pub fn sweep_worker(args: &Args) -> Result<String, CliError> {
    args.ensure_known(SWEEP_WORKER_FLAGS)?;
    let (spec, trials) = parse_sweep_spec(args)?;
    let queue = args
        .flags
        .get("queue")
        .map(std::path::PathBuf::from)
        .ok_or_else(|| err("sweep-worker: needs --queue <path>"))?;
    let worker_id: u64 = args.get_or("worker-id", 0)?;
    let fabric = parse_fabric_flags(args)?;

    let mut config = distill_harness::WorkerConfig::new(queue.clone(), worker_id, trials);
    config.chunk_size = fabric.chunk;
    config.max_claims = fabric.max_claims;
    config.lease_ttl_ms = fabric.lease_ttl_ms;
    config.checkpoint_every = fabric.checkpoint_every;
    config.policy = fabric.policy;
    config.poll = fabric.poll;
    // Per-worker quarantine file by default: concurrent processes never
    // interleave writes into one JSONL.
    config.quarantine = Some(
        args.flags
            .get("quarantine")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                let mut q = queue.as_os_str().to_owned();
                q.push(format!(".worker{worker_id}.quarantine.jsonl"));
                std::path::PathBuf::from(q)
            }),
    );
    // Test/CI hooks mirroring sweep's --inject-panic: stop early or "crash"
    // (exit without completing the leased chunk).
    config.stop_after_chunks = match args.flags.get("stop-after-chunks") {
        None => None,
        Some(_) => Some(args.get_or("stop-after-chunks", 0u64)?),
    };
    config.fail_after_trials = match args.flags.get("fail-after-trials") {
        None => None,
        Some(_) => Some(args.get_or("fail-after-trials", 0u64)?),
    };

    let report = distill_harness::run_worker(std::sync::Arc::new(spec), &config)
        .map_err(|e| err(e.to_string()))?;
    let mut table = Table::new(
        format!(
            "sweep-worker {} — queue {} ({} trials, chunk {})",
            report.worker_id,
            queue.display(),
            trials,
            fabric.chunk
        ),
        &["metric", "value"],
    );
    table.row_owned(vec![
        "chunks claimed / completed / released".into(),
        format!(
            "{} / {} / {}",
            report.chunks_claimed, report.chunks_completed, report.chunks_released
        ),
    ]);
    table.row_owned(vec![
        "trials run / skipped".into(),
        format!("{} / {}", report.trials_run, report.trials_skipped),
    ]);
    table.row_owned(vec!["leases lost".into(), report.leases_lost.to_string()]);
    table.row_owned(vec![
        "quarantined".into(),
        report.quarantined.len().to_string(),
    ]);
    table.row_owned(vec![
        "queue rebuilt".into(),
        report.queue_rebuilt.to_string(),
    ]);
    table.row_owned(vec![
        "own checkpoint rebuilt".into(),
        report.checkpoint_rebuilt.to_string(),
    ]);
    table.row_owned(vec!["queue fully done".into(), report.finished.to_string()]);
    let mut output = table.render();
    for q in &report.quarantined {
        output.push_str(&format!(
            "\nquarantined trial {} (seed {}): {} after {} attempt(s)",
            q.trial, q.seed, q.failure, q.attempts
        ));
    }
    // Quarantined trials are NOT an error exit here: the cross-process
    // claim budget decides chunk fate, and the supervisor's merge reports
    // the sweep-level verdict. A worker that ran at all did its job.
    Ok(output)
}

/// `distill sweep-supervise` — the `loopr`-style dumb supervisor: spawn
/// `--workers` `sweep-worker` processes on one `--queue`, restart dead ones
/// (up to `--max-restarts`), and when the queue says every chunk is done,
/// merge the per-worker checkpoints by set-union into the final result set.
/// All state lives in files: kill -9 this supervisor (or any worker) and a
/// fresh invocation resumes exactly where the fabric left off.
pub fn sweep_supervise(args: &Args) -> Result<String, CliError> {
    args.ensure_known(SWEEP_SUPERVISE_FLAGS)?;
    let (spec, trials) = parse_sweep_spec(args)?;
    let queue = args
        .flags
        .get("queue")
        .map(std::path::PathBuf::from)
        .ok_or_else(|| err("sweep-supervise: needs --queue <path>"))?;
    let workers: u64 = args.get_or("workers", 3)?;
    if workers == 0 {
        return Err(err("--workers must be at least 1"));
    }
    let max_restarts: u64 = args.get_or("max-restarts", 16)?;
    let fabric = parse_fabric_flags(args)?;
    let out_path = args.flags.get("out").map(std::path::PathBuf::from);
    let merged_path = args.flags.get("merged").map(std::path::PathBuf::from);

    // Workers get the spec re-serialized from the parsed values (not the
    // raw argv), so supervisor and workers agree on the fingerprint by
    // construction.
    let mut worker_argv: Vec<String> = vec!["sweep-worker".into()];
    let mut push = |flag: &str, value: String| {
        worker_argv.push(format!("--{flag}"));
        worker_argv.push(value);
    };
    push("n", spec.n.to_string());
    push("m", spec.m.to_string());
    push("honest", spec.honest.to_string());
    push("goods", spec.goods.to_string());
    push("algorithm", spec.algorithm.clone());
    push("adversary", spec.adversary.clone());
    push("trials", trials.to_string());
    push("seed", spec.seed.to_string());
    push("f", spec.f.to_string());
    push("error-rate", spec.error_rate.to_string());
    push("max-rounds", spec.max_rounds.to_string());
    push("drop-rate", spec.faults.drop_rate.to_string());
    push("view-lag", spec.faults.view_lag.to_string());
    push("crash-rate", spec.faults.crash_rate.to_string());
    push("crash-window", spec.faults.crash_window.to_string());
    push("recovery-rate", spec.faults.recovery_rate.to_string());
    if let Some(t) = spec.inject_panic {
        push("inject-panic", t.to_string());
    }
    push("queue", queue.display().to_string());
    push("chunk", fabric.chunk.to_string());
    push("max-claims", fabric.max_claims.to_string());
    push("lease-ttl", fabric.lease_ttl_secs.to_string());
    push("checkpoint-every", fabric.checkpoint_every.to_string());
    push("max-retries", fabric.policy.max_retries.to_string());
    push("trial-timeout", fabric.trial_timeout_secs.to_string());
    for hook in ["stop-after-chunks", "fail-after-trials"] {
        if args.flags.contains_key(hook) {
            push(hook, args.get_or(hook, 0u64)?.to_string());
        }
    }

    let exe = std::env::current_exe().map_err(|e| {
        err(format!(
            "cannot locate the distill binary to spawn workers: {e}"
        ))
    })?;
    let fleet = distill_harness::FleetConfig {
        workers,
        max_restarts,
        poll: fabric.poll,
    };
    let fleet_report = distill_harness::supervise_workers(
        &fleet,
        |slot| {
            std::process::Command::new(&exe)
                .args(&worker_argv)
                .arg("--worker-id")
                .arg(slot.to_string())
                .stdout(std::process::Stdio::null())
                .spawn()
        },
        // Lock-free done probe: the queue file is atomically renamed into
        // place, so a plain read sees a consistent snapshot; any error
        // (missing, mid-rebuild) just means "not done yet". Read + decode
        // rather than `LeaseQueue::load`: load sweeps `.tmp` siblings, and
        // an unlocked sweeper would delete a live worker's scratch file
        // out from under its rename.
        || {
            std::fs::read(&queue)
                .ok()
                .and_then(|bytes| distill_harness::LeaseQueue::decode(&bytes).ok())
                .map(|q| q.all_done())
                .unwrap_or(false)
        },
    )
    .map_err(|e| err(e.to_string()))?;

    // Set-union merge of every worker checkpoint that exists. Racing or
    // duplicated workers are fine: duplicated trials must be bit-identical
    // (determinism), and `merge_checkpoints` hard-errors if they are not.
    let mut parts = Vec::new();
    for id in 0..workers {
        let path = distill_harness::worker_checkpoint_path(&queue, id);
        if path.exists() {
            parts.push(
                distill_harness::Checkpoint::load(&path)
                    .map_err(|e| err(format!("worker {id} checkpoint: {e}")))?,
            );
        }
    }
    if parts.is_empty() {
        return Err(err(
            "sweep-supervise: no worker checkpoints were written (did every spawn fail?)",
        ));
    }
    let merged = distill_harness::merge_checkpoints(&parts).map_err(|e| err(e.to_string()))?;

    if let Some(path) = &out_path {
        let mut text = String::new();
        for (trial, result) in &merged.completed {
            let mut w = distill_harness::Writer::new();
            distill_harness::checkpoint::encode_sim_result(&mut w, result);
            let digest = distill_harness::fnv1a64(&w.into_bytes());
            text.push_str(&format!("trial {trial} {digest:016x}\n"));
        }
        std::fs::write(path, text).map_err(|e| err(format!("--out {}: {e}", path.display())))?;
    }
    if let Some(path) = &merged_path {
        merged
            .write_atomic(path)
            .map_err(|e| err(format!("--merged {}: {e}", path.display())))?;
    }

    let completed = merged.completed.len();
    let costs: Vec<f64> = merged
        .completed
        .iter()
        .map(|(_, r)| r.mean_probes())
        .collect();
    let mut table = Table::new(
        format!(
            "sweep-supervise — queue {} ({workers} workers, {trials} trials)",
            queue.display()
        ),
        &["metric", "value"],
    );
    table.row_owned(vec![
        "completed (merged)".into(),
        format!("{completed}/{trials}"),
    ]);
    table.row_owned(vec![
        "worker restarts".into(),
        fleet_report.restarts.to_string(),
    ]);
    table.row_owned(vec![
        "queue fully done".into(),
        fleet_report.done.to_string(),
    ]);
    table.row_owned(vec![
        "worker checkpoints merged".into(),
        parts.len().to_string(),
    ]);
    table.row_owned(vec![
        "mean individual cost".into(),
        fmt_f(summary_or_blank(&costs).mean),
    ]);
    let output = table.render();
    let missing = usize::try_from(trials)
        .unwrap_or(usize::MAX)
        .saturating_sub(completed);
    if missing > 0 || !fleet_report.done {
        // Same exit-3 semantics as `sweep`: the fabric finished what it
        // could, but trials are missing (quarantined chunks, or the restart
        // budget ran out before the queue drained).
        return Err(CliError::Quarantined {
            output,
            count: missing,
        });
    }
    Ok(output)
}

const GAUNTLET_FLAGS: &[&str] = &["n", "honest", "goods", "trials", "seed", "algorithm"];

/// `distill gauntlet` — one algorithm against every strategy.
pub fn run_gauntlet(args: &Args) -> Result<String, CliError> {
    args.ensure_known(GAUNTLET_FLAGS)?;
    let n: u32 = args.get_or("n", 256)?;
    let default_honest = ((f64::from(n)) * 0.75).round() as u32;
    let honest: u32 = args.get_or("honest", default_honest)?;
    let goods: u32 = args.get_or("goods", 1)?;
    let trials: usize = args.get_or("trials", 5)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let algorithm = args.str_or("algorithm", "distill");
    if honest == 0 || honest > n {
        return Err(err(format!("--honest {honest} must be in 1..={n}")));
    }
    let alpha = f64::from(honest) / f64::from(n);
    make_cohort(
        &algorithm,
        n,
        n,
        alpha,
        f64::from(goods.max(1)) / f64::from(n),
    )?;

    let mut table = Table::new(
        format!("{algorithm} gauntlet — n=m={n} honest={honest} trials={trials}"),
        &["adversary", "mean cost", "mean rounds", "all satisfied"],
    );
    for entry in gauntlet() {
        let results = run_trials_threaded(trials, num_threads(), |t| {
            let world = World::binary(n, goods, seed.wrapping_add(7_000).wrapping_add(t))
                .expect("validated world");
            let cohort =
                make_cohort(&algorithm, n, n, alpha, world.beta()).expect("validated algorithm");
            let config = SimConfig::new(n, honest, seed.wrapping_add(t))
                .with_stop(StopRule::all_satisfied(1_000_000));
            Engine::new(config, &world, cohort, (entry.make)())
                .expect("validated configuration")
                .run()
                .expect("engine run on validated inputs")
        });
        let cost = results.iter().map(|r| r.mean_probes()).sum::<f64>() / results.len() as f64;
        let rounds = results.iter().map(|r| r.rounds as f64).sum::<f64>() / results.len() as f64;
        let ok = results.iter().all(|r| r.all_satisfied);
        table.row_owned(vec![
            entry.name.to_string(),
            fmt_f(cost),
            fmt_f(rounds),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    Ok(table.render())
}

const BOUNDS_FLAGS: &[&str] = &["n", "m", "alpha", "beta", "q0", "eps"];

/// `distill bounds` — evaluate the paper's formulas.
pub fn run_bounds(args: &Args) -> Result<String, CliError> {
    args.ensure_known(BOUNDS_FLAGS)?;
    let n: f64 = args.get_or("n", 1024.0)?;
    let m: f64 = args.get_or("m", n)?;
    let alpha: f64 = args.get_or("alpha", 0.9)?;
    let beta: f64 = args.get_or("beta", 1.0 / m)?;
    let q0: f64 = args.get_or("q0", 1.0)?;
    let eps: f64 = args.get_or("eps", 0.5)?;
    if !(0.0 < alpha && alpha <= 1.0 && 0.0 < beta && beta <= 1.0) {
        return Err(err("alpha and beta must be in (0, 1]"));
    }

    let mut table = Table::new(
        format!("paper bounds at n={n} m={m} alpha={alpha} beta={beta}"),
        &["quantity", "value"],
    );
    table.row_owned(vec![
        "Delta = log(1/(1-a) + log n)".into(),
        fmt_f(bounds::delta(alpha, n)),
    ]);
    table.row_owned(vec![
        "Thm 4 upper (DISTILL individual cost)".into(),
        fmt_f(bounds::distill_upper(n, alpha, beta)),
    ]);
    table.row_owned(vec![
        "baseline upper (prior algorithm [1])".into(),
        fmt_f(bounds::baseline_upper(n, alpha, beta)),
    ]);
    table.row_owned(vec![
        "Thm 1 lower (collective work)".into(),
        fmt_f(bounds::theorem1_lower(n, alpha, beta)),
    ]);
    table.row_owned(vec![
        "Thm 2 lower (symmetry)".into(),
        fmt_f(bounds::theorem2_lower(alpha, beta)),
    ]);
    table.row_owned(vec![
        format!("Cor 5 upper at eps={eps}"),
        fmt_f(bounds::corollary5_upper(eps)),
    ]);
    table.row_owned(vec![
        format!("Thm 12 payment upper at q0={q0}"),
        fmt_f(bounds::theorem12_upper(n, m, alpha, q0)),
    ]);
    table.row_owned(vec![
        "random probing expectation (1/beta)".into(),
        fmt_f(bounds::random_probing_expected(beta)),
    ]);
    Ok(table.render())
}

const MEANFIELD_FLAGS: &[&str] = &["n", "beta", "explore", "rounds"];

/// `distill meanfield` — predicted satisfaction dynamics of the baselines.
pub fn run_meanfield(args: &Args) -> Result<String, CliError> {
    use distill_analysis::meanfield;
    args.ensure_known(MEANFIELD_FLAGS)?;
    let n: f64 = args.get_or("n", 1024.0)?;
    let beta: f64 = args.get_or("beta", 1.0 / n)?;
    let explore: f64 = args.get_or("explore", 0.5)?;
    let rounds: usize = args.get_or("rounds", 200)?;
    if !(0.0 < beta && beta <= 1.0 && (0.0..=1.0).contains(&explore)) {
        return Err(err("need beta in (0,1] and explore in [0,1]"));
    }
    let random = meanfield::random_probing_curve(beta, rounds);
    let balance = meanfield::balance_curve(beta, explore, rounds);
    let mut table = Table::new(
        format!("mean-field satisfied fraction — beta={beta}, explore={explore}"),
        &["round", "random probing", "balance"],
    );
    let mut r = 1usize;
    while r <= rounds {
        table.row_owned(vec![r.to_string(), fmt_f(random[r]), fmt_f(balance[r])]);
        r = (r * 2).max(r + 1);
    }
    Ok(format!(
        "{table}\nexpected individual cost: random {} vs balance {}\n",
        fmt_f(meanfield::expected_individual_cost(&random)),
        fmt_f(meanfield::expected_individual_cost(&balance)),
    ))
}

const ASYNC_FLAGS: &[&str] = &["n", "goods", "schedule", "trials", "seed"];

/// `distill async` — run the asynchronous model of \[1\].
pub fn run_async(args: &Args) -> Result<String, CliError> {
    use distill_sim::async_engine::{
        AsyncEngine, BalanceStep, Isolate, RandomSchedule, RoundRobin, Schedule, Starve,
    };
    use distill_sim::PlayerId;
    args.ensure_known(ASYNC_FLAGS)?;
    let n: u32 = args.get_or("n", 256)?;
    let goods: u32 = args.get_or("goods", 1)?;
    let trials: u64 = args.get_or("trials", 5)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let schedule_name = args.str_or("schedule", "round-robin");
    match schedule_name.as_str() {
        "round-robin" | "random" | "isolate" | "starve" => {}
        other => return Err(err(format!("unknown schedule {other:?}"))),
    }
    let mut totals = Vec::new();
    let mut p0s = Vec::new();
    for t in 0..trials {
        let world = World::binary(n, goods, seed.wrapping_add(500).wrapping_add(t))
            .map_err(|e| err(e.to_string()))?;
        let schedule: Box<dyn Schedule> = match schedule_name.as_str() {
            "round-robin" => Box::new(RoundRobin::default()),
            "random" => Box::new(RandomSchedule),
            "isolate" => Box::new(Isolate::new(PlayerId(0))),
            _ => Box::new(Starve::new(PlayerId(0))),
        };
        let result = AsyncEngine::new(
            n,
            n,
            seed.wrapping_add(t),
            100_000_000,
            &world,
            Box::new(BalanceStep::new()),
            schedule,
            Box::new(NullAdversary),
        )
        .map_err(|e| err(e.to_string()))?
        .run()
        .map_err(|e| err(e.to_string()))?;
        totals.push(result.total_probes() as f64);
        p0s.push(result.probes_of(PlayerId(0)) as f64);
    }
    let mut table = Table::new(
        format!("async model — n=m={n} goods={goods} schedule={schedule_name} trials={trials}"),
        &["metric", "mean"],
    );
    table.row_owned(vec![
        "total probes (all players)".into(),
        fmt_f(summary_or_blank(&totals).mean),
    ]);
    table.row_owned(vec![
        "player-0 probes".into(),
        fmt_f(summary_or_blank(&p0s).mean),
    ]);
    Ok(table.render())
}

const SERVICE_STRESS_FLAGS: &[&str] = &[
    "producers",
    "posts",
    "batch",
    "readers",
    "n",
    "m",
    "posts-per-round",
    "channel",
    "publish-every",
    "verify",
];

/// `distill service-stress` — drive the concurrent billboard service:
/// `--producers` threads submit `--posts` drafts in `--batch`-sized batches
/// through the bounded channel to the single applier, while `--readers`
/// epoch readers sync and tally concurrently. `--verify` replays the merged
/// log sequentially afterwards and fails (nonzero exit) unless the
/// concurrent end state is byte-identical.
pub fn run_service_stress(args: &Args) -> Result<String, CliError> {
    use distill_service::{run_stress, verify_linearization, StressConfig};
    args.ensure_known(SERVICE_STRESS_FLAGS)?;
    let producers: u32 = args.get_or("producers", 8)?;
    let posts: u64 = args.get_or("posts", 1_000_000)?;
    let batch: usize = args.get_or("batch", 1024)?;
    let readers: u32 = args.get_or("readers", 2)?;
    let n: u32 = args.get_or("n", 256)?;
    let m: u32 = args.get_or("m", 1024)?;
    let posts_per_round: u64 = args.get_or("posts-per-round", 256)?;
    let channel: usize = args.get_or("channel", 256)?;
    let publish_every: u64 = args.get_or("publish-every", 8)?;
    let config = StressConfig::new(producers, posts)
        .with_batch_posts(batch)
        .with_universe(n, m)
        .with_readers(readers)
        .with_posts_per_round(posts_per_round)
        .with_channel_batches(channel)
        .with_publish_every(publish_every);
    let policy = config.policy;
    let (outcome, snapshot) = run_stress(config).map_err(|e| err(e.to_string()))?;
    let mut table = Table::new(
        format!(
            "billboard service — {producers} producers × {posts} posts \
             (batch {batch}, {readers} readers, n={n}, m={m})"
        ),
        &["metric", "value"],
    );
    let ns_cell = |ns: Option<u64>| ns.map_or("-".into(), |v| format!("{v}"));
    table.row_owned(vec!["posts applied".into(), outcome.posts.to_string()]);
    table.row_owned(vec![
        "elapsed (ms)".into(),
        format!("{:.1}", outcome.elapsed_ns as f64 / 1e6),
    ]);
    table.row_owned(vec![
        "posts/sec".into(),
        format!("{:.0}", outcome.posts_per_sec),
    ]);
    table.row_owned(vec!["batches".into(), outcome.batches.to_string()]);
    table.row_owned(vec![
        "held out of order".into(),
        outcome.held_out_of_order.to_string(),
    ]);
    table.row_owned(vec![
        "max pending batches".into(),
        outcome.max_pending.to_string(),
    ]);
    table.row_owned(vec![
        "epochs published".into(),
        outcome.epochs_published.to_string(),
    ]);
    table.row_owned(vec!["reader samples".into(), outcome.reads.to_string()]);
    table.row_owned(vec![
        "tally p50/p99 (ns)".into(),
        format!(
            "{} / {}",
            ns_cell(outcome.tally_p50_ns),
            ns_cell(outcome.tally_p99_ns)
        ),
    ]);
    table.row_owned(vec![
        "sync p50/p99 (ns)".into(),
        format!(
            "{} / {}",
            ns_cell(outcome.sync_p50_ns),
            ns_cell(outcome.sync_p99_ns)
        ),
    ]);
    table.row_owned(vec![
        "tally digest".into(),
        format!("{:016x}", outcome.tally_digest),
    ]);
    if args.has("verify") {
        let ok = verify_linearization(&snapshot, policy);
        table.row_owned(vec![
            "linearization vs sequential replay".into(),
            if ok { "ok" } else { "FAILED" }.into(),
        ]);
        if !ok {
            return Err(err(format!(
                "linearization check failed: the concurrent end state diverges \
                 from a sequential replay of the merged log\n{}",
                table.render()
            )));
        }
    }
    Ok(table.render())
}

const LEMMA9_FLAGS: &[&str] = &["a"];

/// `distill lemma9 <c0,c1,...> --a <f64>` — check the inequality.
pub fn run_lemma9(args: &Args) -> Result<String, CliError> {
    args.ensure_known(LEMMA9_FLAGS)?;
    let seq_raw = args
        .positional
        .first()
        .ok_or_else(|| err("lemma9 needs a sequence, e.g. `distill lemma9 25,23,22,18,14,7`"))?;
    let seq: Vec<u64> = seq_raw
        .split(',')
        .map(|s| s.trim().parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|_| err(format!("cannot parse sequence {seq_raw:?}")))?;
    if seq.is_empty() || seq.contains(&0) {
        return Err(err("sequence must be non-empty positive integers"));
    }
    if seq.windows(2).any(|w| w[1] > w[0]) {
        return Err(err("lemma 9 applies to non-increasing sequences"));
    }
    let a: f64 = args.get_or("a", 0.1)?;
    if !(0.0 < a && a < 1.0) {
        return Err(err("--a must be in (0, 1)"));
    }
    let g = lemma9::g_a(&seq, a);
    let rhs = lemma9::lemma9_rhs(&seq, a);
    let rhs_corr = lemma9::lemma9_corrected_rhs(&seq, a);
    let mut table = Table::new(
        format!("Lemma 9 check — sigma={seq:?}, a={a}"),
        &["quantity", "value", "holds?"],
    );
    table.row_owned(vec![
        "f(sigma)".into(),
        fmt_f(lemma9::f_ratio_sum(&seq)),
        "-".into(),
    ]);
    table.row_owned(vec!["g_a(sigma)".into(), fmt_f(g), "-".into()]);
    table.row_owned(vec![
        "paper rhs (ceil(f)+1)·a^(1/c0)".into(),
        fmt_f(rhs),
        if g <= rhs + 1e-9 { "yes" } else { "VIOLATED" }.into(),
    ]);
    table.row_owned(vec![
        "corrected rhs (2f+log2(c0)+1)·a^(1/c0)".into(),
        fmt_f(rhs_corr),
        if g <= rhs_corr + 1e-9 {
            "yes"
        } else {
            "VIOLATED"
        }
        .into(),
    ]);
    Ok(table.render())
}

const BENCH_STORE_FLAGS: &[&str] = &[
    "store",
    "json",
    "commit",
    "timestamp",
    "bench",
    "tolerance",
    "format",
    "inject-regression",
];

/// Escapes a string for the deterministic JSON output (same convention as
/// distill-lint's report writer).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON token: finite values print their shortest round-trip
/// form, everything else (NaN, ±inf, absent) is `null` — strict parsers
/// reject bare non-finite literals.
fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

/// Reads and parses every `--json` bench dump (comma-separated paths).
fn load_bench_rows(args: &Args) -> Result<Vec<distill_harness::BenchRow>, CliError> {
    let list = args
        .flags
        .get("json")
        .ok_or_else(|| err("bench-store: needs --json <file[,file...]>"))?;
    let mut rows = Vec::new();
    for path in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let text = std::fs::read_to_string(path).map_err(|e| err(format!("--json {path}: {e}")))?;
        rows.extend(
            distill_harness::parse_bench_json(&text).map_err(|e| err(format!("{path}: {e}")))?,
        );
    }
    if rows.is_empty() {
        return Err(err("bench-store: no bench rows in the --json input"));
    }
    Ok(rows)
}

/// `distill bench-store` — the persistent experiment store and trend gate.
pub fn run_bench_store(args: &Args) -> Result<String, CliError> {
    args.ensure_known(BENCH_STORE_FLAGS)?;
    let format = args.str_or("format", "table");
    if format != "table" && format != "json" {
        return Err(err(format!(
            "--format {format:?} not recognized (table | json)"
        )));
    }
    let store_path = args
        .flags
        .get("store")
        .map(std::path::PathBuf::from)
        .ok_or_else(|| err("bench-store: needs --store <path>"))?;
    match args.positional.first().map(String::as_str) {
        Some("append") => bench_store_append(args, &store_path, &format),
        Some("query") => bench_store_query(args, &store_path, &format),
        Some("diff") => bench_store_diff(args, &store_path, &format),
        other => Err(err(format!(
            "bench-store: unknown action {:?} (append | query | diff)",
            other.unwrap_or("<none>")
        ))),
    }
}

fn bench_store_append(
    args: &Args,
    store_path: &std::path::Path,
    format: &str,
) -> Result<String, CliError> {
    let commit = args
        .flags
        .get("commit")
        .ok_or_else(|| err("bench-store append: needs --commit <label>"))?;
    // Deterministic by default: the caller supplies the timestamp (CI passes
    // a fixed one), so re-running an append never invents wall-clock state.
    let timestamp: u64 = args.get_or("timestamp", 0)?;
    let records: Vec<_> = load_bench_rows(args)?
        .into_iter()
        .map(|row| row.into_record(commit, timestamp))
        .collect();
    let outcome = distill_harness::ExperimentStore::append(store_path, &records)
        .map_err(|e| err(e.to_string()))?;
    if format == "json" {
        return Ok(format!(
            "{{\n  \"tool\": \"distill-bench-store\",\n  \"version\": 1,\n  \
             \"store\": \"{}\",\n  \"existing\": {},\n  \"added\": {},\n  \"total\": {}\n}}",
            json_escape(&store_path.display().to_string()),
            outcome.existing,
            outcome.added,
            outcome.store.len(),
        ));
    }
    let mut table = Table::new(
        format!("bench-store append — {}", store_path.display()),
        &["metric", "value"],
    );
    table.row_owned(vec!["records before".into(), outcome.existing.to_string()]);
    table.row_owned(vec!["records added".into(), outcome.added.to_string()]);
    table.row_owned(vec![
        "records total".into(),
        outcome.store.len().to_string(),
    ]);
    table.row_owned(vec!["commit".into(), commit.clone()]);
    table.row_owned(vec!["timestamp".into(), timestamp.to_string()]);
    Ok(table.render())
}

fn bench_store_query(
    args: &Args,
    store_path: &std::path::Path,
    format: &str,
) -> Result<String, CliError> {
    let store =
        distill_harness::ExperimentStore::load(store_path).map_err(|e| err(e.to_string()))?;
    let filter = args.flags.get("bench");
    let records: Vec<_> = store
        .records()
        .iter()
        .filter(|r| filter.map_or(true, |f| &r.bench_id == f))
        .collect();
    if format == "json" {
        let mut out = String::from(
            "{\n  \"tool\": \"distill-bench-store\",\n  \"version\": 1,\n  \"records\": [",
        );
        for (i, r) in records.iter().enumerate() {
            out.push_str(&format!(
                "\n    {{\"bench_id\": \"{}\", \"commit\": \"{}\", \"timestamp\": {}, \
                 \"kind\": \"{}\", \"unit\": \"{}\", \"mean\": {}, \"median\": {}, \
                 \"min\": {}, \"samples\": {}}}{}",
                json_escape(&r.bench_id),
                json_escape(&r.commit),
                r.timestamp,
                r.kind,
                json_escape(&r.unit),
                json_num(Some(r.mean)),
                json_num(Some(r.median)),
                json_num(Some(r.min)),
                r.samples,
                if i + 1 < records.len() { "," } else { "" },
            ));
        }
        out.push_str(if records.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str(&format!("  \"total\": {}\n}}", records.len()));
        return Ok(out);
    }
    let mut table = Table::new(
        format!(
            "bench-store query — {} ({} record(s))",
            store_path.display(),
            records.len()
        ),
        &[
            "bench", "commit", "ts", "kind", "unit", "min", "median", "mean", "samples",
        ],
    );
    for r in &records {
        table.row_owned(vec![
            r.bench_id.clone(),
            r.commit.clone(),
            r.timestamp.to_string(),
            r.kind.to_string(),
            r.unit.clone(),
            fmt_f(r.min),
            fmt_f(r.median),
            fmt_f(r.mean),
            r.samples.to_string(),
        ]);
    }
    let mut output = table.render();

    // Per-bench history statistics over the timed `min` series, routed
    // through the Option-returning `analysis` stats: empty or non-finite
    // series (a single degenerate record) come back `None` and render as
    // `-` cells instead of NaN verdicts.
    let mut by_bench: std::collections::BTreeMap<&str, Vec<f64>> =
        std::collections::BTreeMap::new();
    for r in &records {
        if r.kind == distill_harness::RowKind::Timed {
            by_bench.entry(&r.bench_id).or_default().push(r.min);
        }
    }
    if !by_bench.is_empty() {
        let mut stats = Table::new(
            "per-bench min_ns history (timed rows)",
            &["bench", "points", "best", "mean", "ci95 half-width"],
        );
        for (bench, mins) in &by_bench {
            let summary = Summary::of(mins);
            let ci = distill_analysis::ci95(mins);
            stats.row_owned(vec![
                (*bench).to_string(),
                mins.len().to_string(),
                fmt_f(summary.map_or(f64::NAN, |s| s.min)),
                fmt_f(summary.map_or(f64::NAN, |s| s.mean)),
                fmt_f(ci.map_or(f64::NAN, |c| c.half_width())),
            ]);
        }
        output.push('\n');
        output.push_str(&stats.render());
    }
    Ok(output)
}

fn bench_store_diff(
    args: &Args,
    store_path: &std::path::Path,
    format: &str,
) -> Result<String, CliError> {
    let tolerance: f64 = args.get_or("tolerance", 0.5)?;
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(err("--tolerance must be a finite fraction >= 0"));
    }
    // CI self-test hook (mirrors sweep's --inject-panic): scale the current
    // timed rows so the gate demonstrably fails on a known-bad run.
    let inject: f64 = args.get_or("inject-regression", 1.0)?;
    if !inject.is_finite() || inject <= 0.0 {
        return Err(err("--inject-regression must be a finite factor > 0"));
    }
    let commit = args.str_or("commit", "current");
    let store =
        distill_harness::ExperimentStore::load(store_path).map_err(|e| err(e.to_string()))?;
    let mut current: Vec<_> = load_bench_rows(args)?
        .into_iter()
        .map(|row| row.into_record(&commit, 0))
        .collect();
    if inject != 1.0 {
        for r in &mut current {
            if r.kind == distill_harness::RowKind::Timed {
                r.mean *= inject;
                r.median *= inject;
                r.min *= inject;
            }
        }
    }
    let gate = distill_harness::TrendGate { tolerance };
    let verdicts = gate.evaluate(&store, &current);
    let regressed = verdicts
        .iter()
        .filter(|v| v.status == distill_harness::TrendStatus::Regressed)
        .count();

    let output = if format == "json" {
        let mut out = format!(
            "{{\n  \"tool\": \"distill-bench-store\",\n  \"version\": 1,\n  \
             \"tolerance\": {},\n  \"regressed\": {regressed},\n  \"verdicts\": [",
            json_num(Some(tolerance)),
        );
        for (i, v) in verdicts.iter().enumerate() {
            out.push_str(&format!(
                "\n    {{\"bench_id\": \"{}\", \"kind\": \"{}\", \"unit\": \"{}\", \
                 \"baseline_points\": {}, \"baseline_min\": {}, \"baseline_median\": {}, \
                 \"current_min\": {}, \"current_median\": {}, \"min_ratio\": {}, \
                 \"status\": \"{}\"}}{}",
                json_escape(&v.bench_id),
                v.kind,
                json_escape(&v.unit),
                v.baseline_points,
                json_num(v.baseline_min),
                json_num(v.baseline_median),
                json_num(Some(v.current_min)),
                json_num(Some(v.current_median)),
                json_num(v.min_ratio),
                v.status,
                if i + 1 < verdicts.len() { "," } else { "" },
            ));
        }
        out.push_str(if verdicts.is_empty() {
            "]\n}"
        } else {
            "\n  ]\n}"
        });
        out
    } else {
        let mut table = Table::new(
            format!(
                "bench-store diff — {} vs {} (tolerance {:.0}%)",
                commit,
                store_path.display(),
                tolerance * 100.0
            ),
            &[
                "bench", "kind", "pts", "base min", "cur min", "ratio", "status",
            ],
        );
        for v in &verdicts {
            table.row_owned(vec![
                v.bench_id.clone(),
                v.kind.to_string(),
                v.baseline_points.to_string(),
                fmt_f(v.baseline_min.unwrap_or(f64::NAN)),
                fmt_f(v.current_min),
                fmt_f(v.min_ratio.unwrap_or(f64::NAN)),
                v.status.to_string(),
            ]);
        }
        table.render()
    };
    if regressed > 0 {
        return Err(CliError::Regression {
            output,
            count: regressed,
        });
    }
    Ok(output)
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "run" => run(args),
        "sweep" => sweep(args),
        "sweep-worker" => sweep_worker(args),
        "sweep-supervise" => sweep_supervise(args),
        "gauntlet" => run_gauntlet(args),
        "bounds" => run_bounds(args),
        "lemma9" => run_lemma9(args),
        "meanfield" => run_meanfield(args),
        "async" => run_async(args),
        "service-stress" => run_service_stress(args),
        "bench-store" => run_bench_store(args),
        "help" | "--help" | "-h" => Ok(help()),
        other => Err(err(format!(
            "unknown command {other:?} (try `distill help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &[&str]) -> Args {
        Args::parse(line.iter().copied(), &[]).unwrap()
    }

    #[test]
    fn help_lists_commands() {
        let h = help();
        for cmd in [
            "run",
            "sweep",
            "sweep-worker",
            "sweep-supervise",
            "gauntlet",
            "bounds",
            "lemma9",
            "service-stress",
            "bench-store",
        ] {
            assert!(h.contains(cmd), "help must mention {cmd}");
        }
        for flag in [
            "--checkpoint",
            "--resume",
            "--trial-timeout",
            "--max-retries",
            "--stream",
            "--queue",
            "--lease-ttl",
            "--max-claims",
            "--workers",
            "--max-restarts",
        ] {
            assert!(h.contains(flag), "help must mention {flag}");
        }
    }

    #[test]
    fn service_stress_runs_and_verifies() {
        let args = Args::parse(
            [
                "service-stress",
                "--producers",
                "4",
                "--posts",
                "20000",
                "--batch",
                "256",
                "--readers",
                "1",
                "--verify",
            ]
            .iter()
            .copied(),
            &["verify"],
        )
        .unwrap();
        let out = run_service_stress(&args).unwrap();
        assert!(out.contains("posts applied"));
        assert!(out.contains("20000"));
        assert!(out.contains("linearization"));
        assert!(out.contains("ok"));
        // unknown flags are rejected
        let bad = Args::parse(["service-stress", "--bogus", "1"].iter().copied(), &[]).unwrap();
        assert!(run_service_stress(&bad).is_err());
    }

    fn sweep_tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("distill-cli-sweep-{}-{name}", std::process::id()))
    }

    fn parse_with_switches(line: &[&str]) -> Args {
        Args::parse(line.iter().copied(), &["resume"]).unwrap()
    }

    #[test]
    fn sweep_small_simulation() {
        let out = dispatch(&parse(&[
            "sweep", "--n", "16", "--m", "16", "--honest", "14", "--trials", "3", "--seed", "5",
        ]))
        .unwrap();
        assert!(out.contains("completed"));
        assert!(out.contains("3/3"));
        assert!(out.contains("quarantined"));
    }

    #[test]
    fn sweep_checkpoint_resume_digests_match() {
        let ckpt = sweep_tmp("resume.ckpt");
        let out_a = sweep_tmp("a.txt");
        let out_b = sweep_tmp("b.txt");
        for p in [&ckpt, &out_a, &out_b] {
            std::fs::remove_file(p).ok();
        }
        let base = [
            "sweep", "--n", "16", "--honest", "14", "--trials", "4", "--seed", "9",
        ];
        // Uninterrupted reference.
        let mut args_a: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        args_a.extend(["--out".into(), out_a.display().to_string()]);
        dispatch(&Args::parse(args_a, &["resume"]).unwrap()).unwrap();
        // Checkpointed run, then a redundant resume; digests must match.
        let mut args_b: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        args_b.extend([
            "--checkpoint".into(),
            ckpt.display().to_string(),
            "--checkpoint-every".into(),
            "1".into(),
        ]);
        dispatch(&Args::parse(args_b.clone(), &["resume"]).unwrap()).unwrap();
        args_b.extend([
            "--resume".into(),
            "--out".into(),
            out_b.display().to_string(),
        ]);
        let out = dispatch(&Args::parse(args_b, &["resume"]).unwrap()).unwrap();
        assert!(out.contains("resumed from checkpoint"));
        let a = std::fs::read_to_string(&out_a).unwrap();
        let b = std::fs::read_to_string(&out_b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "resumed sweep must reproduce the reference digests");
        for p in [&ckpt, &out_a, &out_b] {
            std::fs::remove_file(p).ok();
        }
        let mut q = ckpt.as_os_str().to_owned();
        q.push(".quarantine.jsonl");
        std::fs::remove_file(std::path::PathBuf::from(q)).ok();
    }

    #[test]
    fn sweep_inject_panic_quarantines() {
        let quarantine = sweep_tmp("q.jsonl");
        std::fs::remove_file(&quarantine).ok();
        let err = dispatch(&parse(&[
            "sweep",
            "--n",
            "16",
            "--honest",
            "14",
            "--trials",
            "3",
            "--inject-panic",
            "1",
            "--max-retries",
            "0",
            "--quarantine",
            quarantine.to_str().unwrap(),
        ]))
        .unwrap_err();
        match err {
            CliError::Quarantined { output, count } => {
                assert_eq!(count, 1);
                assert!(output.contains("2/3"));
                assert!(output.contains("quarantined trial 1"));
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
        let text = std::fs::read_to_string(&quarantine).unwrap();
        assert!(text.contains("\"trial\":1"));
        assert!(text.contains("injected panic"));
        std::fs::remove_file(&quarantine).ok();
    }

    #[test]
    fn sweep_rejects_bad_flags() {
        assert!(dispatch(&parse_with_switches(&["sweep", "--resume"])).is_err()); // no checkpoint
        assert!(dispatch(&parse(&["sweep", "--trials", "0"])).is_err());
        assert!(dispatch(&parse(&["sweep", "--trial-timeout", "-1"])).is_err());
        assert!(dispatch(&parse(&["sweep", "--algorithm", "nope"])).is_err());
        assert!(dispatch(&parse(&["sweep", "--bogus", "1"])).is_err());
    }

    fn parse_stream(line: &[&str]) -> Args {
        Args::parse(line.iter().copied(), &["resume", "stream"]).unwrap()
    }

    /// `sweep --stream` must report the same mean cost (to rounding) and
    /// satisfied count as the retained sweep of the same spec, while
    /// refusing the retained-results-only flags.
    #[test]
    fn sweep_stream_matches_retained_aggregates() {
        let base = [
            "sweep", "--n", "16", "--honest", "14", "--trials", "6", "--seed", "3",
        ];
        let retained = dispatch(&parse(&base)).unwrap();
        let mut with_stream: Vec<&str> = base.to_vec();
        with_stream.push("--stream");
        let streamed = dispatch(&parse_stream(&with_stream)).unwrap();
        let grab = |out: &str, label: &str| -> String {
            out.lines()
                .find(|l| l.contains(label))
                .unwrap_or_else(|| panic!("no {label:?} row in:\n{out}"))
                .split_whitespace()
                .last()
                .unwrap()
                .to_string()
        };
        assert_eq!(
            grab(&retained, "mean individual cost"),
            grab(&streamed, "mean individual cost"),
            "streaming must not change the mean"
        );
        assert_eq!(
            grab(&retained, "trials fully satisfied"),
            grab(&streamed, "trials fully satisfied"),
        );
        assert!(streamed.contains("completed"));
        assert!(streamed.contains("6/6"));
        assert!(streamed.contains("p50/p90/p99"));

        // Streaming keeps no per-trial results: checkpoint/resume/out are out.
        let ckpt = sweep_tmp("stream.ckpt");
        for bad in [
            vec!["sweep", "--stream", "--checkpoint", ckpt.to_str().unwrap()],
            vec!["sweep", "--stream", "--out", "/tmp/x.digests"],
        ] {
            assert!(dispatch(&parse_stream(&bad)).is_err(), "{bad:?} must fail");
        }
    }

    /// Two in-process fabric workers on one queue: disjoint leased chunks,
    /// and the merged checkpoints reproduce the single-process sweep's
    /// digests bit-for-bit.
    #[test]
    fn sweep_workers_share_a_queue_and_merge_matches_reference() {
        let dir = std::env::temp_dir().join(format!("distill-cli-fabric-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let queue = dir.join("sweep.queue");
        let queue_s = queue.display().to_string();
        let out_ref = dir.join("reference.digests");

        let spec = [
            "--n", "16", "--honest", "14", "--trials", "6", "--seed", "11",
        ];
        // Single-process reference digests.
        let mut ref_args: Vec<&str> = vec!["sweep"];
        ref_args.extend_from_slice(&spec);
        let out_ref_s = out_ref.display().to_string();
        ref_args.extend_from_slice(&["--out", &out_ref_s]);
        dispatch(&parse(&ref_args)).unwrap();

        // Worker 0 claims one chunk then stops (simulating a short-lived
        // process); worker 1 drains the rest.
        let worker = |id: &str, extra: &[&str]| {
            let mut argv: Vec<&str> = vec![
                "sweep-worker",
                "--queue",
                &queue_s,
                "--worker-id",
                id,
                "--chunk",
                "2",
            ];
            argv.extend_from_slice(&spec);
            argv.extend_from_slice(extra);
            dispatch(&parse(&argv)).unwrap()
        };
        let out0 = worker("0", &["--stop-after-chunks", "1"]);
        assert!(out0.contains("chunks claimed"));
        let out1 = worker("1", &[]);
        assert!(out1.contains("queue fully done"), "{out1}");
        assert!(
            out1.contains("true"),
            "worker 1 must drain the queue: {out1}"
        );

        // Merge the per-worker checkpoints exactly as sweep-supervise does.
        let parts: Vec<_> = (0..2)
            .map(|id| {
                distill_harness::Checkpoint::load(&distill_harness::worker_checkpoint_path(
                    &queue, id,
                ))
                .unwrap()
            })
            .collect();
        let merged = distill_harness::merge_checkpoints(&parts).unwrap();
        assert_eq!(merged.completed.len(), 6);
        let mut digests = String::new();
        for (trial, result) in &merged.completed {
            let mut w = distill_harness::Writer::new();
            distill_harness::checkpoint::encode_sim_result(&mut w, result);
            digests.push_str(&format!(
                "trial {trial} {:016x}\n",
                distill_harness::fnv1a64(&w.into_bytes())
            ));
        }
        assert_eq!(
            digests,
            std::fs::read_to_string(&out_ref).unwrap(),
            "fabric merge must be bit-identical to the single-process sweep"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fabric_commands_validate_flags() {
        // Both fabric commands refuse to run without a queue.
        assert!(dispatch(&parse(&["sweep-worker"])).is_err());
        assert!(dispatch(&parse(&["sweep-supervise"])).is_err());
        for (flag, bad) in [
            ("--chunk", "0"),
            ("--max-claims", "0"),
            ("--lease-ttl", "0"),
            ("--lease-ttl", "-3"),
            ("--trial-timeout", "-1"),
        ] {
            let argv = ["sweep-worker", "--queue", "/tmp/q", flag, bad];
            assert!(dispatch(&parse(&argv)).is_err(), "{flag} {bad} must fail");
        }
        assert!(dispatch(&parse(&[
            "sweep-supervise",
            "--queue",
            "/tmp/q",
            "--workers",
            "0"
        ]))
        .is_err());
        // Unknown flags rejected on both.
        assert!(dispatch(&parse(&[
            "sweep-worker",
            "--queue",
            "/tmp/q",
            "--bogus",
            "1"
        ]))
        .is_err());
        assert!(dispatch(&parse(&[
            "sweep-supervise",
            "--queue",
            "/tmp/q",
            "--bogus",
            "1"
        ]))
        .is_err());
        // The spec surface is validated identically to sweep's.
        assert!(dispatch(&parse(&[
            "sweep-worker",
            "--queue",
            "/tmp/q",
            "--algorithm",
            "nope"
        ]))
        .is_err());
    }

    #[test]
    fn run_small_simulation() {
        let out = dispatch(&parse(&[
            "run",
            "--n",
            "32",
            "--honest",
            "24",
            "--trials",
            "3",
            "--algorithm",
            "distill",
            "--adversary",
            "uniform-bad",
        ]))
        .unwrap();
        assert!(out.contains("individual cost"));
        assert!(out.contains("3/3"), "all trials should satisfy: {out}");
        assert!(out.contains("Theorem 4"));
    }

    #[test]
    fn run_with_faults_reports_counters_and_alpha_eff() {
        let out = dispatch(&parse(&[
            "run",
            "--n",
            "32",
            "--honest",
            "28",
            "--trials",
            "3",
            "--drop-rate",
            "0.2",
            "--crash-rate",
            "0.25",
            "--view-lag",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("posts dropped"), "fault rows missing: {out}");
        assert!(out.contains("survivor cost"));
        assert!(out.contains("effective alpha'"), "no alpha' line: {out}");
    }

    #[test]
    fn noop_fault_flags_print_no_fault_rows() {
        let out = dispatch(&parse(&[
            "run", "--n", "32", "--honest", "24", "--trials", "2",
        ]))
        .unwrap();
        assert!(!out.contains("posts dropped"));
        assert!(!out.contains("effective alpha'"));
    }

    #[test]
    fn run_rejects_nonsense() {
        assert!(dispatch(&parse(&["run", "--algorithm", "nope"])).is_err());
        assert!(dispatch(&parse(&["run", "--adversary", "nope"])).is_err());
        assert!(dispatch(&parse(&["run", "--honest", "0"])).is_err());
        assert!(dispatch(&parse(&["run", "--drop-rate", "1.5"])).is_err());
        assert!(dispatch(&parse(&[
            "run",
            "--crash-rate",
            "0.5",
            "--crash-window",
            "0"
        ]))
        .is_err());
        assert!(dispatch(&parse(&["run", "--bogus-flag", "1"])).is_err());
        assert!(dispatch(&parse(&["frobnicate"])).is_err());
    }

    /// A population past the u32 id space must fail with the typed id-space
    /// message (on both entry points), not a parse error or a truncated run.
    #[test]
    fn oversize_population_reports_the_id_space_limit() {
        let over = (u64::from(u32::MAX) + 1).to_string();
        for cmd in ["run", "sweep"] {
            let e = dispatch(&parse(&[cmd, "--n", &over])).unwrap_err();
            assert!(
                format!("{e}").contains("u32 id space"),
                "{cmd}: expected the id-space error, got: {e}"
            );
        }
    }

    #[test]
    fn gauntlet_reports_every_strategy() {
        let out = dispatch(&parse(&["gauntlet", "--n", "32", "--trials", "2"])).unwrap();
        for entry in gauntlet() {
            assert!(out.contains(entry.name), "missing {} in {out}", entry.name);
        }
        assert!(
            !out.contains("NO"),
            "all strategies must be survived: {out}"
        );
    }

    #[test]
    fn bounds_table_renders() {
        let out = dispatch(&parse(&["bounds", "--n", "1024", "--alpha", "0.9"])).unwrap();
        assert!(out.contains("Thm 4"));
        assert!(out.contains("Thm 12"));
        assert!(dispatch(&parse(&["bounds", "--alpha", "1.5"])).is_err());
    }

    #[test]
    fn lemma9_detects_the_counterexample() {
        let out = dispatch(
            &Args::parse(
                ["lemma9", "25,23,22,18,14,7", "--a", "0.0019304541362277093"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        assert!(
            out.contains("VIOLATED"),
            "the documented counterexample: {out}"
        );
        assert!(
            out.matches("yes").count() >= 1,
            "corrected bound holds: {out}"
        );
    }

    #[test]
    fn meanfield_prints_dynamics() {
        let out = dispatch(&parse(&["meanfield", "--n", "1024", "--rounds", "64"])).unwrap();
        assert!(out.contains("balance"));
        assert!(out.contains("expected individual cost"));
        assert!(dispatch(&parse(&["meanfield", "--beta", "2.0"])).is_err());
    }

    #[test]
    fn async_runs_schedules() {
        for sched in ["round-robin", "isolate", "starve"] {
            let out = dispatch(&parse(&[
                "async",
                "--n",
                "32",
                "--trials",
                "2",
                "--schedule",
                sched,
            ]))
            .unwrap();
            assert!(out.contains("player-0 probes"), "{sched}: {out}");
        }
        assert!(dispatch(&parse(&["async", "--schedule", "nope"])).is_err());
    }

    #[test]
    fn isolate_costs_player_zero_more() {
        let grab = |sched: &str| -> f64 {
            let out = dispatch(&parse(&[
                "async",
                "--n",
                "64",
                "--trials",
                "3",
                "--schedule",
                sched,
            ]))
            .unwrap();
            let line = out
                .lines()
                .find(|l| l.contains("player-0 probes"))
                .expect("metric line")
                .to_string();
            line.split_whitespace().last().unwrap().parse().unwrap()
        };
        assert!(
            grab("isolate") > grab("starve"),
            "isolation must dominate starvation"
        );
    }

    #[test]
    fn lemma9_validates_input() {
        assert!(dispatch(&parse(&["lemma9"])).is_err());
        assert!(dispatch(&parse(&["lemma9", "3,5"])).is_err()); // increasing
        assert!(dispatch(&parse(&["lemma9", "abc"])).is_err());
        assert!(dispatch(&Args::parse(["lemma9", "4,2", "--a", "1.5"], &[]).unwrap()).is_err());
        // a valid, holding case
        let out =
            dispatch(&Args::parse(["lemma9", "8,4,2,1", "--a", "0.01"], &[]).unwrap()).unwrap();
        assert!(!out.contains("VIOLATED"));
    }

    // ---- bench-store --------------------------------------------------

    fn bench_store_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "distill-cli-bench-store-{name}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_bench_json(dir: &std::path::Path, name: &str, min: f64, median: f64) -> String {
        let path = dir.join(name);
        let text = format!(
            "{{\"benches\": [\
             {{\"id\": \"engine/round\", \"kind\": \"timed\", \"unit\": \"ns\", \
              \"mean_ns\": {mean}, \"median_ns\": {median}, \"min_ns\": {min}, \
              \"samples\": 10, \"throughput_per_sec\": 1.0}},\
             {{\"id\": \"alloc/per_round\", \"kind\": \"value\", \"unit\": \"allocs/round\", \
              \"mean_ns\": 0.0, \"median_ns\": 0.0, \"min_ns\": 0.0, \
              \"samples\": 1, \"throughput_per_sec\": 0.0}}\
             ]}}",
            mean = (min + median) / 2.0,
        );
        std::fs::write(&path, text).unwrap();
        path.display().to_string()
    }

    #[test]
    fn bench_store_append_twice_is_bit_identical_and_diff_passes() {
        let dir = bench_store_dir("idempotent");
        let store = dir.join("history.store").display().to_string();
        let json = write_bench_json(&dir, "run.json", 100.0, 120.0);
        let append = |_: ()| {
            dispatch(&parse(&[
                "bench-store",
                "append",
                "--store",
                &store,
                "--json",
                &json,
                "--commit",
                "seed",
            ]))
            .unwrap()
        };
        let out = append(());
        assert!(out.contains("records added"));
        let bytes_once = std::fs::read(&store).unwrap();
        append(());
        assert_eq!(
            std::fs::read(&store).unwrap(),
            bytes_once,
            "second append of the same run must leave the store bit-identical"
        );
        // Re-run of the same commit passes the gate: no regression.
        let out = dispatch(&parse(&[
            "bench-store",
            "diff",
            "--store",
            &store,
            "--json",
            &json,
        ]))
        .unwrap();
        assert!(out.contains("pass"));
        assert!(out.contains("value (not gated)"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_store_diff_fails_on_injected_regression_with_exit_code_4_semantics() {
        let dir = bench_store_dir("inject");
        let store = dir.join("history.store").display().to_string();
        let json = write_bench_json(&dir, "run.json", 100.0, 120.0);
        dispatch(&parse(&[
            "bench-store",
            "append",
            "--store",
            &store,
            "--json",
            &json,
            "--commit",
            "seed",
        ]))
        .unwrap();
        // 3x slower on min and median: past the 50% band.
        let result = dispatch(&parse(&[
            "bench-store",
            "diff",
            "--store",
            &store,
            "--json",
            &json,
            "--inject-regression",
            "3.0",
        ]));
        match result {
            Err(CliError::Regression { output, count }) => {
                assert_eq!(count, 1, "only the timed row regresses");
                assert!(output.contains("REGRESSED"));
                // The injected factor must never push the value row through
                // the gate in ns terms.
                assert!(output.contains("value (not gated)"));
            }
            other => panic!("expected Regression, got {other:?}"),
        }
        // A wider tolerance absorbs the same injection.
        assert!(dispatch(&parse(&[
            "bench-store",
            "diff",
            "--store",
            &store,
            "--json",
            &json,
            "--inject-regression",
            "3.0",
            "--tolerance",
            "5.0",
        ]))
        .is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite regression test: a single-sample, zero-variance, or
    /// degenerate (zero / non-finite) series must render `-` cells and an
    /// `indeterminate` verdict — never NaN — in both query and diff output.
    #[test]
    fn bench_store_degenerate_series_render_dashes_not_nan() {
        let dir = bench_store_dir("degenerate");
        let store = dir.join("history.store").display().to_string();
        // Healthy single-sample history for two benches (zero variance)...
        let seed = dir.join("seed.json");
        std::fs::write(
            &seed,
            "{\"benches\": [\
             {\"id\": \"degenerate/zero\", \"kind\": \"timed\", \"unit\": \"ns\", \
              \"mean_ns\": 10.0, \"median_ns\": 10.0, \"min_ns\": 10.0, \
              \"samples\": 1, \"throughput_per_sec\": 1.0},\
             {\"id\": \"healthy/one\", \"kind\": \"timed\", \"unit\": \"ns\", \
              \"mean_ns\": 50.0, \"median_ns\": 50.0, \"min_ns\": 50.0, \
              \"samples\": 1, \"throughput_per_sec\": 1.0}\
             ]}",
        )
        .unwrap();
        let seed = seed.display().to_string();
        // ...and a current run where one bench's timer collapsed to 0 ns.
        let path = dir.join("run.json");
        std::fs::write(
            &path,
            "{\"benches\": [\
             {\"id\": \"degenerate/zero\", \"kind\": \"timed\", \"unit\": \"ns\", \
              \"mean_ns\": 0.0, \"median_ns\": 0.0, \"min_ns\": 0.0, \
              \"samples\": 1, \"throughput_per_sec\": 0.0},\
             {\"id\": \"healthy/one\", \"kind\": \"timed\", \"unit\": \"ns\", \
              \"mean_ns\": 50.0, \"median_ns\": 50.0, \"min_ns\": 50.0, \
              \"samples\": 1, \"throughput_per_sec\": 1.0}\
             ]}",
        )
        .unwrap();
        let json = path.display().to_string();
        dispatch(&parse(&[
            "bench-store",
            "append",
            "--store",
            &store,
            "--json",
            &seed,
            "--commit",
            "seed",
        ]))
        .unwrap();
        // The degenerate run itself also lands in the store, so the query
        // path sees a series containing a zero (Summary still finite) and a
        // bench history of one point (ci95 half-width 0, never NaN).
        dispatch(&parse(&[
            "bench-store",
            "append",
            "--store",
            &store,
            "--json",
            &json,
            "--commit",
            "zeroed",
        ]))
        .unwrap();
        let query = dispatch(&parse(&["bench-store", "query", "--store", &store])).unwrap();
        assert!(
            !query.contains("NaN"),
            "query must never print NaN:\n{query}"
        );
        let diff = dispatch(&parse(&[
            "bench-store",
            "diff",
            "--store",
            &store,
            "--json",
            &json,
        ]))
        .unwrap();
        assert!(!diff.contains("NaN"), "diff must never print NaN:\n{diff}");
        assert!(diff.contains("indeterminate"));
        assert!(diff.contains("pass"), "the healthy bench still passes");
        // JSON output: degenerate ratios are null, not NaN.
        let diff_json = dispatch(&parse(&[
            "bench-store",
            "diff",
            "--store",
            &store,
            "--json",
            &json,
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(!diff_json.contains("NaN"));
        assert!(diff_json.contains("\"min_ratio\": null"));
        assert!(diff_json.contains("\"status\": \"indeterminate\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_store_query_lists_history_and_filters() {
        let dir = bench_store_dir("query");
        let store = dir.join("history.store").display().to_string();
        let a = write_bench_json(&dir, "a.json", 100.0, 120.0);
        let b = write_bench_json(&dir, "b.json", 90.0, 110.0);
        for (json, commit) in [(&a, "c1"), (&b, "c2")] {
            dispatch(&parse(&[
                "bench-store",
                "append",
                "--store",
                &store,
                "--json",
                json,
                "--commit",
                commit,
            ]))
            .unwrap();
        }
        let out = dispatch(&parse(&["bench-store", "query", "--store", &store])).unwrap();
        assert!(out.contains("4 record(s)"));
        assert!(out.contains("per-bench min_ns history"));
        let filtered = dispatch(&parse(&[
            "bench-store",
            "query",
            "--store",
            &store,
            "--bench",
            "engine/round",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(filtered.contains("\"total\": 2"));
        assert!(filtered.contains("\"commit\": \"c1\""));
        assert!(filtered.contains("\"commit\": \"c2\""));
        assert!(!filtered.contains("alloc/per_round"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_store_validates_input() {
        let dir = bench_store_dir("validate");
        let store = dir.join("history.store").display().to_string();
        // No action / unknown action / missing flags.
        assert!(dispatch(&parse(&["bench-store"])).is_err());
        assert!(dispatch(&parse(&["bench-store", "frobnicate", "--store", &store])).is_err());
        assert!(dispatch(&parse(&["bench-store", "append", "--store", &store])).is_err());
        // Append without --commit.
        let json = write_bench_json(&dir, "run.json", 100.0, 120.0);
        assert!(dispatch(&parse(&[
            "bench-store",
            "append",
            "--store",
            &store,
            "--json",
            &json
        ]))
        .is_err());
        // Pre-schema JSON (no kind/unit) is refused with the typed message.
        let legacy = dir.join("legacy.json");
        std::fs::write(
            &legacy,
            "{\"benches\": [{\"id\": \"x\", \"mean_ns\": 1.0, \"median_ns\": 1.0, \
             \"min_ns\": 1.0, \"samples\": 1, \"throughput_per_sec\": 1.0}]}",
        )
        .unwrap();
        let legacy = legacy.display().to_string();
        let e = dispatch(&parse(&[
            "bench-store",
            "append",
            "--store",
            &store,
            "--json",
            &legacy,
            "--commit",
            "seed",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("kind"));
        // Diff against a missing store is a hard error, bad tolerance too.
        assert!(dispatch(&parse(&[
            "bench-store",
            "diff",
            "--store",
            &store,
            "--json",
            &json
        ]))
        .is_err());
        assert!(dispatch(&parse(&[
            "bench-store",
            "diff",
            "--store",
            &store,
            "--json",
            &json,
            "--tolerance",
            "-1"
        ]))
        .is_err());
        // Unknown flags and formats are rejected.
        assert!(dispatch(&parse(&[
            "bench-store",
            "query",
            "--store",
            &store,
            "--bogus",
            "1"
        ]))
        .is_err());
        assert!(dispatch(&parse(&[
            "bench-store",
            "query",
            "--store",
            &store,
            "--format",
            "xml"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
