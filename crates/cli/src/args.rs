//! A small, dependency-free argument parser.
//!
//! Grammar: `distill <command> [positional…] [--flag value | --switch]…`.
//! Flags take exactly one value unless listed as boolean switches by the
//! caller; unknown flags are an error (catching typos beats silently
//! ignoring them).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Parsed command-line input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The command word (first argument).
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// `--flag value` pairs.
    pub flags: BTreeMap<String, String>,
    /// Bare `--switch` entries.
    pub switches: BTreeSet<String>,
}

/// Argument-parsing and lookup errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No command given.
    MissingCommand,
    /// A `--flag` appeared with no following value.
    MissingValue(String),
    /// A flag's value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
        /// Expected type, for the message.
        expected: &'static str,
    },
    /// A flag was given that the command does not understand.
    UnknownFlag(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `distill help`)"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "flag --{flag}: cannot parse {value:?} as {expected}")
            }
            ArgError::UnknownFlag(flag) => {
                write!(f, "unknown flag --{flag} (try `distill help`)")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name). `switches` lists the
    /// flags that take no value.
    pub fn parse<I, S>(raw: I, switches: &[&str]) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = raw.into_iter().map(Into::into).peekable();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if switches.contains(&name) {
                    args.switches.insert(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.into()))?;
                    args.flags.insert(name.to_string(), value);
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// A string flag with a default.
    pub fn str_or(&self, flag: &str, default: &str) -> String {
        self.flags
            .get(flag)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: raw.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// `true` iff the switch was given.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.contains(switch)
    }

    /// Rejects any flag/switch outside the allowed set.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys().chain(self.switches.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::UnknownFlag(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands_flags_switches() {
        let a = Args::parse(
            ["run", "--n", "128", "extra", "--json", "--alpha", "0.9"],
            &["json"],
        )
        .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.positional, vec!["extra"]);
        assert_eq!(a.flags.get("n").map(String::as_str), Some("128"));
        assert!(a.has("json"));
        assert_eq!(a.get_or("n", 0u32).unwrap(), 128);
        assert!((a.get_or("alpha", 0.0f64).unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
        assert_eq!(a.str_or("mode", "default"), "default");
    }

    #[test]
    fn missing_command_and_value() {
        assert_eq!(
            Args::parse(Vec::<String>::new(), &[]).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            Args::parse(["run", "--n"], &[]).unwrap_err(),
            ArgError::MissingValue("n".into())
        );
    }

    #[test]
    fn bad_and_unknown_values() {
        let a = Args::parse(["run", "--n", "abc"], &[]).unwrap();
        assert!(matches!(
            a.get_or("n", 0u32),
            Err(ArgError::BadValue { .. })
        ));
        assert!(a.ensure_known(&["n"]).is_ok());
        assert!(matches!(
            a.ensure_known(&["m"]),
            Err(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn errors_render() {
        assert!(ArgError::MissingCommand.to_string().contains("help"));
        assert!(ArgError::MissingValue("x".into())
            .to_string()
            .contains("--x"));
        assert!(ArgError::UnknownFlag("y".into())
            .to_string()
            .contains("--y"));
        let e = ArgError::BadValue {
            flag: "n".into(),
            value: "zzz".into(),
            expected: "u32",
        };
        assert!(e.to_string().contains("zzz"));
    }
}
